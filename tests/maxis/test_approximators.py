"""Tests for the MaxIS approximation algorithms and the oracle registry."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ApproximationError
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    independence_number,
    path_graph,
    star_graph,
    verify_independent_set,
)
from repro.maxis import (
    MaxISApproximator,
    available_approximators,
    best_of_random_mis,
    clique_cover_approximation,
    clique_cover_number_upper_bound,
    clique_cover_quality,
    exact_maximum_independent_set,
    exact_via_networkx,
    first_fit_greedy,
    get_approximator,
    greedy_clique_cover,
    luby_based_approximation,
    min_degree_greedy,
    random_order_mis,
    register_approximator,
    turan_guarantee,
    turan_lower_bound,
)

from tests.conftest import graphs


class TestRegistry:
    def test_builtin_names_present(self):
        names = set(available_approximators())
        assert {"exact", "greedy-min-degree", "greedy-first-fit", "luby-best-of-5", "clique-cover"} <= names

    def test_unknown_name_raises(self):
        with pytest.raises(ApproximationError):
            get_approximator("does-not-exist")

    def test_duplicate_registration_rejected(self):
        get_approximator("exact")  # ensure builtins are loaded
        with pytest.raises(ApproximationError):
            register_approximator(
                MaxISApproximator(name="exact", solve=lambda g: set())
            )

    def test_call_verifies_independence(self):
        bad = MaxISApproximator(name="bad-tmp", solve=lambda g: set(g.vertices))
        with pytest.raises(Exception):
            bad(path_graph(3))

    def test_call_rejects_empty_output_on_nonempty_graph(self):
        lazy = MaxISApproximator(name="lazy-tmp", solve=lambda g: set())
        with pytest.raises(ApproximationError):
            lazy(path_graph(3))

    def test_guarantee_below_one_rejected(self):
        broken = MaxISApproximator(
            name="broken-tmp", solve=lambda g: {next(iter(g.vertices))}, guarantee=lambda g: 0.5
        )
        with pytest.raises(ApproximationError):
            broken.guaranteed_lambda(path_graph(3))

    def test_guarantee_none_when_not_declared(self):
        heuristic = MaxISApproximator(name="heur-tmp", solve=lambda g: set())
        assert heuristic.guaranteed_lambda(path_graph(2)) is None


class TestExact:
    def test_exact_matches_known_values(self):
        assert len(exact_maximum_independent_set(cycle_graph(9))) == 4
        assert len(exact_maximum_independent_set(complete_graph(5))) == 1

    def test_size_limit_guard(self):
        g = erdos_renyi_graph(40, 0.1, seed=1)
        with pytest.raises(ApproximationError):
            exact_maximum_independent_set(g, size_limit=10)

    def test_size_limit_disabled(self):
        g = erdos_renyi_graph(30, 0.1, seed=1)
        result = exact_maximum_independent_set(g, size_limit=None)
        verify_independent_set(g, result)

    def test_networkx_cross_check_empty_graph(self):
        assert exact_via_networkx(Graph()) == set()


class TestGreedy:
    def test_min_degree_greedy_turan_bound(self):
        for seed in range(5):
            g = erdos_renyi_graph(25, 0.2, seed=seed)
            result = min_degree_greedy(g)
            assert len(result) >= turan_lower_bound(g) - 1e-9

    def test_first_fit_greedy_is_independent(self, random_graph):
        verify_independent_set(random_graph, first_fit_greedy(random_graph))

    def test_turan_guarantee_is_delta_plus_one(self, random_graph):
        assert turan_guarantee(random_graph) == random_graph.max_degree() + 1

    @given(graphs(max_n=10))
    @settings(max_examples=30, deadline=None)
    def test_greedy_within_guarantee(self, g):
        if g.num_vertices() == 0:
            return
        result = min_degree_greedy(g)
        alpha = independence_number(g)
        assert len(result) * turan_guarantee(g) >= alpha


class TestLubyBased:
    def test_random_order_mis_is_maximal(self, random_graph):
        from repro.graphs import is_maximal_independent_set

        assert is_maximal_independent_set(random_graph, random_order_mis(random_graph, seed=1))

    def test_best_of_trials_not_smaller_than_single_run(self, random_graph):
        single = random_order_mis(random_graph, seed=0)
        best = best_of_random_mis(random_graph, trials=8, seed=0)
        assert len(best) >= len(single)

    def test_trials_must_be_positive(self, random_graph):
        with pytest.raises(ApproximationError):
            best_of_random_mis(random_graph, trials=0)

    def test_luby_based_approximation_deterministic_for_seed(self, random_graph):
        a = luby_based_approximation(random_graph, seed=5)
        b = luby_based_approximation(random_graph, seed=5)
        assert a == b


class TestCliqueCover:
    def test_cover_is_partition(self, random_graph):
        cliques = greedy_clique_cover(random_graph)
        union = set()
        total = 0
        for clique in cliques:
            assert random_graph.is_clique(clique)
            union |= clique
            total += len(clique)
        assert union == random_graph.vertices
        assert total == random_graph.num_vertices()

    def test_cover_size_upper_bounds_alpha(self):
        for seed in range(4):
            g = erdos_renyi_graph(16, 0.3, seed=seed)
            assert clique_cover_number_upper_bound(g) >= independence_number(g)

    def test_representatives_are_independent(self, random_graph):
        verify_independent_set(random_graph, clique_cover_approximation(random_graph))

    def test_quality_report_keys(self, random_graph):
        report = clique_cover_quality(random_graph)
        assert {"cliques", "selected", "certified_ratio"} <= set(report)
        assert report["certified_ratio"] >= 1.0

    def test_star_graph_cover(self):
        from repro.graphs import is_maximal_independent_set

        g = star_graph(5)
        result = clique_cover_approximation(g)
        # On a star the procedure either picks the center (if its clique comes
        # first) or the leaves; both are maximal independent sets.
        assert is_maximal_independent_set(g, result)
        assert len(greedy_clique_cover(g)) == 5


class TestRegisteredQuality:
    @pytest.mark.parametrize("name", ["greedy-min-degree", "greedy-first-fit", "luby-best-of-5", "clique-cover"])
    def test_every_registered_approximator_respects_its_guarantee(self, name):
        approximator = get_approximator(name)
        for seed in range(3):
            g = erdos_renyi_graph(18, 0.25, seed=seed)
            result = approximator(g)
            lam = approximator.guaranteed_lambda(g)
            assert len(result) * lam >= independence_number(g)

    def test_exact_approximator_is_optimal(self):
        approximator = get_approximator("exact")
        g = erdos_renyi_graph(16, 0.3, seed=5)
        assert len(approximator(g)) == independence_number(g)

    @given(graphs(max_n=10), st.sampled_from(["greedy-min-degree", "luby-best-of-5", "clique-cover"]))
    @settings(max_examples=30, deadline=None)
    def test_approximators_always_return_independent_sets(self, g, name):
        if g.num_vertices() == 0:
            return
        result = get_approximator(name)(g)
        verify_independent_set(g, result)
        assert result
