"""Tests for approximation-guarantee verification."""

from __future__ import annotations

import pytest

from repro.exceptions import ApproximationError, IndependenceError
from repro.graphs import Graph, complete_graph, path_graph, star_graph
from repro.maxis import ApproximationReport, check_approximation, require_approximation


class TestCheckApproximation:
    def test_exact_solution_has_ratio_one(self):
        g = path_graph(5)
        report = check_approximation(g, {0, 2, 4}, claimed_lambda=1.0)
        assert report.achieved_ratio == 1.0
        assert report.satisfied

    def test_suboptimal_solution_measured(self):
        g = star_graph(4)
        report = check_approximation(g, {0}, claimed_lambda=2.0)
        assert report.achieved_ratio == 4.0
        assert not report.satisfied

    def test_explicit_optimum_avoids_exact_solve(self):
        g = star_graph(4)
        report = check_approximation(g, {1, 2}, claimed_lambda=2.0, optimum=4)
        assert report.optimum == 4.0
        assert report.satisfied

    def test_non_independent_candidate_rejected(self):
        g = path_graph(3)
        with pytest.raises(IndependenceError):
            check_approximation(g, {0, 1})

    def test_empty_candidate_on_empty_graph(self):
        report = check_approximation(Graph(), set(), claimed_lambda=1.0)
        assert report.achieved_ratio == 1.0
        assert report.satisfied

    def test_empty_candidate_on_nonempty_graph_has_infinite_ratio(self):
        report = check_approximation(path_graph(3), set())
        assert report.achieved_ratio == float("inf")

    def test_invalid_lambda_rejected(self):
        with pytest.raises(ApproximationError):
            check_approximation(path_graph(3), {0}, claimed_lambda=0.5)

    def test_negative_optimum_rejected(self):
        with pytest.raises(ApproximationError):
            check_approximation(path_graph(3), {0}, optimum=-1)

    def test_no_claim_is_always_satisfied(self):
        g = complete_graph(4)
        report = check_approximation(g, {0})
        assert report.claimed_lambda is None
        assert report.satisfied


class TestRequireApproximation:
    def test_passes_for_valid_guarantee(self):
        g = star_graph(6)
        report = require_approximation(g, set(range(1, 7)), claimed_lambda=1.0)
        assert isinstance(report, ApproximationReport)

    def test_raises_for_violated_guarantee(self):
        g = star_graph(6)
        with pytest.raises(ApproximationError):
            require_approximation(g, {0}, claimed_lambda=2.0)
