"""Observability integration: instrumentation must not perturb results.

The hard invariant of the obs layer — campaign digests and row content
are byte-identical with tracing on and off, the persisted ``metrics.json``
covers the catalog the future scrape endpoint needs, and
:class:`CampaignRunStats` is a faithful projection of the registry
deltas.  Also exercises the three new CLI surfaces: ``campaign run
--trace``, ``campaign metrics`` and ``trace summary``.
"""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.runtime import (
    CampaignRunStats,
    CampaignSpec,
    InlineExecutor,
    ShardCoordinator,
    campaign_digest,
    campaign_records,
    open_store,
    run_campaign,
)

from tests.runtime.test_tasks import NONDETERMINISTIC_ROW_FIELDS


def small_spec(name="obs-int") -> CampaignSpec:
    return CampaignSpec(
        name=name,
        seed=11,
        families=("colorable", "uniform"),
        sizes=((10, 6),),
        ks=(2,),
        oracles=("greedy-first-fit",),
        lams=(2.0,),
        replicates=2,
    )


def digest_of(spec, directory):
    return campaign_digest(campaign_records(spec, open_store(directory).rows()))


def deterministic_rows(directory):
    return {
        key: {k: v for k, v in row.items() if k not in NONDETERMINISTIC_ROW_FIELDS}
        for key, row in open_store(directory).latest_rows().items()
    }


class TestTracingDoesNotPerturbResults:
    def test_traced_run_is_byte_identical_to_untraced(self, tmp_path):
        spec = small_spec()
        plain = run_campaign(spec, tmp_path / "plain", workers=0)
        traced = run_campaign(spec, tmp_path / "traced", workers=0, trace=True)
        assert (plain.executed, plain.failed) == (traced.executed, traced.failed)
        assert deterministic_rows(tmp_path / "plain") == deterministic_rows(
            tmp_path / "traced"
        )
        assert digest_of(spec, tmp_path / "plain") == digest_of(
            spec, tmp_path / "traced"
        )
        valid, skipped = obs.validate_trace(tmp_path / "traced" / obs.TRACE_FILENAME)
        assert skipped == 0 and valid > 0
        # The untraced run wrote no sidecar.
        assert not (tmp_path / "plain" / obs.TRACE_FILENAME).exists()

    def test_traced_pool_run_matches_serial_digest(self, tmp_path):
        spec = small_spec("obs-int-pool")
        reference = run_campaign(spec, tmp_path / "serial", workers=0)
        assert reference.failed == 0
        run_campaign(spec, tmp_path / "pool", workers=2, trace=True)
        assert digest_of(spec, tmp_path / "pool") == digest_of(
            spec, tmp_path / "serial"
        )

    def test_traced_supervised_run_matches_serial_digest(self, tmp_path):
        spec = small_spec("obs-int-sup")
        run_campaign(spec, tmp_path / "serial", workers=0)
        report = ShardCoordinator(
            spec,
            tmp_path / "supervised",
            n_shards=2,
            executor=InlineExecutor(),
            poll_interval_s=0.01,
            trace=True,
        ).run()
        assert report.digest == digest_of(spec, tmp_path / "serial")
        valid, skipped = obs.validate_trace(
            tmp_path / "supervised" / obs.TRACE_FILENAME
        )
        assert skipped == 0 and valid > 0
        assert (tmp_path / "supervised" / obs.METRICS_FILENAME).exists()

    def test_trace_sidecar_holds_the_execution_tree(self, tmp_path):
        spec = small_spec("obs-int-tree")
        run_campaign(spec, tmp_path / "run", workers=0, trace=True)
        records = obs.read_trace(tmp_path / "run" / obs.TRACE_FILENAME)
        spans = [r for r in records if r["type"] == "span"]
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        assert len(by_name["campaign_run"]) == 1
        assert len(by_name["task"]) == spec.num_tasks()
        run_id = by_name["campaign_run"][0]["span_id"]
        assert all(task["parent_id"] == run_id for task in by_name["task"])
        # Phases nest under tasks (subset: cache hits skip instance_build).
        task_ids = {task["span_id"] for task in by_name["task"]}
        assert by_name["phase"] and all(
            phase["parent_id"] in task_ids for phase in by_name["phase"]
        )
        statuses = [r["attrs"]["status"] for r in by_name["task"]]
        assert statuses.count("done") == spec.num_tasks()


class TestMetricsSnapshot:
    REQUIRED_FAMILIES = (
        "repro_tasks_started_total",
        "repro_tasks_completed_total",
        "repro_task_duration_seconds",
        "repro_instance_cache_total",
        "repro_pool_dispatch_total",
        "repro_campaign_tasks_per_second",
        "repro_store_rows_appended_total",
        "repro_store_flushes_total",
        "repro_phase_duration_seconds",
    )

    def test_every_run_persists_a_snapshot_covering_the_catalog(self, tmp_path):
        spec = small_spec("obs-int-snap")
        run_campaign(spec, tmp_path / "run", workers=0)
        snapshot = obs.load_snapshot(tmp_path / "run" / obs.METRICS_FILENAME)
        populated = {m["name"] for m in snapshot["metrics"] if m["samples"]}
        missing = [name for name in self.REQUIRED_FAMILIES if name not in populated]
        assert not missing, f"snapshot lacks samples for {missing}"
        text = obs.render_snapshot(snapshot)
        assert f'repro_tasks_started_total{{campaign="{spec.name}"}}' in text
        assert 'repro_task_duration_seconds_bucket' in text

    def test_stats_are_a_projection_of_registry_deltas(self, tmp_path):
        spec = small_spec("obs-int-proj")
        registry = obs.get_registry()
        hits = registry.counter(
            "repro_instance_cache_total",
            "",
            labels=("campaign", "outcome"),
        ).labels(spec.name, "hit")
        before = hits.value
        stats = run_campaign(spec, tmp_path / "first", workers=0)
        assert stats.cache_hits == hits.value - before
        # A second run of the same campaign re-reads the registry from a
        # fresh baseline: fully-resumed runs report zero, not the global
        # running total.
        resumed = run_campaign(spec, tmp_path / "first", workers=0)
        assert resumed.executed == 0
        assert resumed.cache_hits == 0 and resumed.cache_misses == 0

    def test_cache_hit_ratio_with_zero_lookups_is_zero(self):
        # Regression guard: a run that resumed everything (no instance
        # builds at all) must report 0.0, not raise ZeroDivisionError.
        stats = CampaignRunStats(
            campaign="empty",
            total_tasks=4,
            skipped=4,
            executed=0,
            failed=0,
            workers=0,
            wall_time_s=0.01,
        )
        assert stats.cache_hits == 0 and stats.cache_misses == 0
        assert stats.cache_hit_ratio == 0.0


class TestCli:
    def run_traced(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(small_spec("obs-int-cli").to_json())
        out = tmp_path / "out"
        code = main(
            ["campaign", "run", "--spec", str(spec_path), "--out", str(out), "--trace"]
        )
        assert code == 0
        capsys.readouterr()
        return out

    def test_campaign_metrics_renders_prometheus_text(self, tmp_path, capsys):
        out = self.run_traced(tmp_path, capsys)
        assert main(["campaign", "metrics", str(out)]) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_tasks_started_total counter" in text
        assert 'repro_tasks_started_total{campaign="obs-int-cli"}' in text
        assert "repro_task_duration_seconds_bucket" in text

    def test_campaign_metrics_json_mode(self, tmp_path, capsys):
        out = self.run_traced(tmp_path, capsys)
        assert main(["campaign", "metrics", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == obs.SNAPSHOT_VERSION
        assert any(m["name"] == "repro_tasks_started_total" for m in payload["metrics"])

    def test_campaign_metrics_without_snapshot_fails_cleanly(self, tmp_path, capsys):
        assert main(["campaign", "metrics", str(tmp_path)]) == 2
        assert "no metrics snapshot" in capsys.readouterr().err

    def test_trace_summary_aggregates_spans(self, tmp_path, capsys):
        out = self.run_traced(tmp_path, capsys)
        assert main(["trace", "summary", str(out), "--limit", "2"]) == 0
        text = capsys.readouterr().out
        assert "campaign_run" in text and "task" in text and "phase" in text
        assert "slowest 2 span(s):" in text

    def test_trace_summary_without_sidecar_fails_cleanly(self, tmp_path, capsys):
        assert main(["trace", "summary", str(tmp_path)]) == 2
        assert "no trace sidecar" in capsys.readouterr().err

    def test_supervise_cli_accepts_trace(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(small_spec("obs-int-cli-sup").to_json())
        out = tmp_path / "sup"
        code = main(
            [
                "campaign",
                "supervise",
                "--spec",
                str(spec_path),
                "--out",
                str(out),
                "--shards",
                "2",
                "--trace",
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["trace", "summary", str(out)]) == 0
        assert "supervise" in capsys.readouterr().out
