"""Unit tests for the metrics registry (:mod:`repro.obs.metrics`).

Covers the registry contract the runtime instrumentation leans on:
idempotent registration, bounded label cardinality, exact histogram
bucket-edge placement, thread-safe increments under a real thread pool,
and byte-stable Prometheus rendering pinned by a golden file.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.exceptions import ObsError
from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    format_value,
    load_snapshot,
    render_snapshot,
)

GOLDEN_PATH = Path(__file__).with_name("golden_prometheus.txt")


def golden_registry() -> MetricsRegistry:
    """A registry with fixed, hand-picked values — the golden file pins its text.

    Regenerate the golden file after an intentional format change with::

        PYTHONPATH=src python -c "from tests.obs.test_metrics import *; \
            GOLDEN_PATH.write_text(golden_registry().render_prometheus())"
    """
    registry = MetricsRegistry()
    tasks = registry.counter(
        "golden_tasks_total", "Tasks processed.", labels=("campaign", "status")
    )
    tasks.labels("demo", "done").inc(7)
    tasks.labels("demo", "failed").inc()
    registry.counter("golden_events_total", "Label-less events.").inc(3)
    registry.gauge("golden_queue_depth", "Pending tasks.").set(2.5)
    duration = registry.histogram(
        "golden_duration_seconds",
        "Task durations.",
        labels=("campaign",),
        buckets=(0.1, 1.0, 10.0),
    )
    for value in (0.05, 0.1, 0.5, 2.0, 30.0):
        duration.labels("demo").observe(value)
    escapes = registry.gauge(
        "golden_escapes", 'Label values with "quotes", \\ and newlines.', labels=("text",)
    )
    escapes.labels('say "hi"\\\n').set(1)
    return registry


class TestCounterAndGauge:
    def test_counter_counts_and_refuses_negative_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ObsError, match="only go up"):
            counter.inc(-1)
        assert counter.value == 3.5

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "help")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "help", buckets=(1.0, 2.0))
        # Exactly-on-the-edge values land in their bucket (le semantics);
        # anything above the last bound lands in the +Inf overflow.
        for value in (0.5, 1.0, 1.0000001, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.labels().bucket_counts() == [2, 2, 1]
        assert histogram.labels().count == 5
        assert histogram.labels().sum == pytest.approx(7.5000001)

    def test_rendering_is_cumulative_with_inf_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "help", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            histogram.observe(value)
        text = registry.render_prometheus()
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_count 3" in text

    def test_default_buckets_are_sorted_and_distinct(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))

    def test_unsorted_or_empty_buckets_are_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObsError, match="buckets"):
            registry.histogram("h1", "help", buckets=(2.0, 1.0))
        with pytest.raises(ObsError, match="buckets"):
            registry.histogram("h2", "help", buckets=())


class TestRegistration:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", labels=("a",))
        second = registry.counter("c_total", "other help", labels=("a",))
        assert first is second

    def test_conflicting_redeclaration_raises(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help")
        with pytest.raises(ObsError, match="already registered"):
            registry.gauge("c_total", "help")
        with pytest.raises(ObsError, match="already registered"):
            registry.counter("c_total", "help", labels=("other",))

    @pytest.mark.parametrize("name", ["", "0starts_with_digit", "has space", "has-dash"])
    def test_invalid_metric_names_are_rejected(self, name):
        with pytest.raises(ObsError, match="invalid metric name"):
            MetricsRegistry().counter(name, "help")

    @pytest.mark.parametrize("label", ["", "0digit", "has space", "le:"])
    def test_invalid_label_names_are_rejected(self, label):
        with pytest.raises(ObsError, match="invalid label name"):
            MetricsRegistry().counter("c_total", "help", labels=(label,))

    def test_duplicate_label_names_are_rejected(self):
        with pytest.raises(ObsError, match="duplicate label names"):
            MetricsRegistry().counter("c_total", "help", labels=("a", "a"))


class TestLabels:
    def test_label_sets_get_distinct_children(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "help", labels=("status",))
        family.labels("done").inc(2)
        family.labels("failed").inc()
        assert family.labels("done").value == 2
        assert family.labels("failed").value == 1
        assert [values for values, _ in family.children()] == [("done",), ("failed",)]

    def test_label_count_mismatch_raises(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "help", labels=("a", "b"))
        with pytest.raises(ObsError, match="takes 2 label"):
            family.labels("only-one")

    def test_cardinality_bound_is_enforced(self):
        registry = MetricsRegistry(max_label_sets=3)
        family = registry.counter("c_total", "help", labels=("key",))
        for i in range(3):
            family.labels(str(i)).inc()
        with pytest.raises(ObsError, match="cardinality bound"):
            family.labels("one-too-many")
        # Existing children stay reachable after the refusal.
        assert family.labels("0").value == 1

    def test_label_values_are_stringified(self):
        registry = MetricsRegistry()
        family = registry.gauge("g", "help", labels=("shard",))
        family.labels(3).set(1)
        assert family.labels("3").value == 1


class TestConcurrency:
    def test_concurrent_increments_from_a_thread_pool_are_lossless(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", labels=("worker",))
        histogram = registry.histogram("h", "help", buckets=(0.5,))
        threads, per_thread = 8, 2000
        barrier = threading.Barrier(threads)

        def hammer(worker: int) -> None:
            barrier.wait()  # maximize interleaving
            child = counter.labels(str(worker % 2))
            for _ in range(per_thread):
                child.inc()
                histogram.observe(0.25)

        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(hammer, range(threads)))
        total = sum(child.value for _, child in counter.children())
        assert total == threads * per_thread
        assert histogram.labels().count == threads * per_thread
        assert histogram.labels().bucket_counts() == [threads * per_thread, 0]


class TestRendering:
    def test_prometheus_text_matches_the_golden_file(self):
        assert golden_registry().render_prometheus() == GOLDEN_PATH.read_text(
            encoding="utf-8"
        )

    def test_two_identical_registries_render_identically(self):
        assert (
            golden_registry().render_prometheus()
            == golden_registry().render_prometheus()
        )

    def test_format_value(self):
        assert format_value(3.0) == "3"
        assert format_value(-2.0) == "-2"
        assert format_value(0.25) == "0.25"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestSnapshotPersistence:
    def test_snapshot_roundtrips_through_disk(self, tmp_path):
        registry = golden_registry()
        path = registry.write_snapshot(tmp_path / "metrics.json")
        snapshot = load_snapshot(path)
        assert render_snapshot(snapshot) == registry.render_prometheus()

    def test_load_snapshot_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({"version": 999, "metrics": []}))
        with pytest.raises(ObsError, match="unsupported version"):
            load_snapshot(path)

    def test_load_snapshot_rejects_garbage(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text("not json {")
        with pytest.raises(ObsError, match="not valid JSON"):
            load_snapshot(path)
        with pytest.raises(ObsError, match="cannot read"):
            load_snapshot(tmp_path / "missing.json")

    def test_load_snapshot_rejects_missing_metrics_list(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({"version": 1}))
        with pytest.raises(ObsError, match="missing its 'metrics' list"):
            load_snapshot(path)
