"""Unit tests for the tracing layer (:mod:`repro.obs.trace`).

Pins the sidecar discipline the runtime relies on: a no-op global
default, thread-local span nesting, one flushed JSON line per record,
truncated-tail termination on reopen (the kill-tolerance contract shared
with the row store), and the reader/validator semantics around malformed
lines.
"""

import json
import threading

import pytest

from repro import obs
from repro.exceptions import ObsError
from repro.obs import (
    TRACE_VERSION,
    JsonlTracer,
    NullTracer,
    read_trace,
    validate_trace,
)


class TestNullDefault:
    def test_default_tracer_is_a_noop(self):
        assert isinstance(obs.get_tracer(), NullTracer)
        assert not obs.tracing_enabled()
        with obs.span("anything", k=3) as span:
            span.set(more="attrs")
        obs.event("anything", x=1)  # nothing raised, nothing written

    def test_tracing_context_installs_and_restores(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        before = obs.get_tracer()
        with obs.tracing(path) as tracer:
            assert obs.get_tracer() is tracer
            assert obs.tracing_enabled()
            obs.event("inside")
        assert obs.get_tracer() is before
        assert not obs.tracing_enabled()
        # The handle was closed on exit: late writes are dropped silently.
        tracer.event("after-close")
        names = [r.get("name") for r in read_trace(path)]
        assert "inside" in names and "after-close" not in names


class TestJsonlTracer:
    def test_header_spans_and_events_nest(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(path):
            with obs.span("outer", a=1) as outer:
                obs.event("mark", x=2)
                with obs.span("inner"):
                    pass
                outer.set(b=2)
        records = read_trace(path)
        assert records[0]["type"] == "trace_start"
        assert records[0]["version"] == TRACE_VERSION
        by_name = {r["name"]: r for r in records[1:]}
        outer, inner, mark = by_name["outer"], by_name["inner"], by_name["mark"]
        assert outer["parent_id"] is None and outer["depth"] == 0
        assert inner["parent_id"] == outer["span_id"] and inner["depth"] == 1
        assert mark["parent_id"] == outer["span_id"]
        assert outer["attrs"] == {"a": 1, "b": 2}
        # Spans close inner-first, so the inner span is written earlier.
        assert records.index(inner) < records.index(outer)
        assert inner["dur_s"] >= 0 and outer["dur_s"] >= inner["dur_s"]

    def test_exception_records_error_type(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(path):
            with pytest.raises(ValueError):
                with obs.span("failing"):
                    raise ValueError("boom")
        (span,) = [r for r in read_trace(path) if r["type"] == "span"]
        assert span["attrs"]["error_type"] == "ValueError"

    def test_every_record_is_one_flushed_json_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(path):
            obs.event("first")
            # Flushed per record: readable while the tracer is still open.
            lines = path.read_text(encoding="utf-8").splitlines()
            assert len(lines) == 2  # header + event
            assert all(json.loads(line) for line in lines)

    def test_reopen_terminates_a_truncated_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(path):
            obs.event("before-kill")
        # Simulate a kill mid-write: a fragment with no trailing newline.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "event", "name": "half-writ')
        with obs.tracing(path):
            obs.event("after-restart")
        names = [r.get("name") for r in read_trace(path) if r["type"] == "event"]
        assert names == ["before-kill", "after-restart"]
        valid, skipped = validate_trace(path)
        assert skipped == 1  # the fragment, now a lone malformed line
        assert valid == 4  # two headers + two events

    def test_threads_get_independent_span_stacks(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        results = []

        def worker(name):
            with obs.span(name) as span:
                results.append((name, span.depth))

        with obs.tracing(path):
            threads = [
                threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        # No thread saw another thread's open span as its parent.
        assert all(depth == 0 for _, depth in results)
        spans = [r for r in read_trace(path) if r["type"] == "span"]
        assert {r["name"] for r in spans} == {"t0", "t1", "t2", "t3"}
        assert all(r["parent_id"] is None for r in spans)


class TestReadAndValidate:
    def test_read_trace_of_missing_file_is_empty(self, tmp_path):
        assert read_trace(tmp_path / "absent.jsonl") == []

    def test_read_trace_skips_malformed_and_foreign_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(path):
            obs.event("kept")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n\n[1, 2, 3]\n")
        records = read_trace(path)
        assert [r["type"] for r in records] == ["trace_start", "event"]

    def test_validate_trace_missing_file_raises(self, tmp_path):
        with pytest.raises(ObsError, match="does not exist"):
            validate_trace(tmp_path / "absent.jsonl")

    def test_validate_trace_requires_a_header(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "event", "name": "orphan", "t_s": 0.0}\n')
        with pytest.raises(ObsError, match="no trace_start header"):
            validate_trace(path)

    def test_validate_trace_rejects_unknown_record_types(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(path):
            pass
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "mystery"}\n')
        with pytest.raises(ObsError, match="not a trace record"):
            validate_trace(path)

    def test_validate_trace_rejects_missing_keys_and_bad_values(self, tmp_path):
        incomplete = tmp_path / "incomplete.jsonl"
        with obs.tracing(incomplete):
            pass
        with open(incomplete, "a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "name": "partial"}\n')
        with pytest.raises(ObsError, match="missing"):
            validate_trace(incomplete)

        negative = tmp_path / "negative.jsonl"
        with obs.tracing(negative):
            pass
        with open(negative, "a", encoding="utf-8") as handle:
            record = {
                "type": "span",
                "name": "warped",
                "span_id": 0,
                "parent_id": None,
                "depth": 0,
                "t_start_s": 1.0,
                "dur_s": -0.5,
            }
            handle.write(json.dumps(record) + "\n")
        with pytest.raises(ObsError, match="negative"):
            validate_trace(negative)

    def test_validate_trace_rejects_future_versions(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps(
                {"type": "trace_start", "version": 999, "pid": 1, "unix_time": 0.0}
            )
            + "\n"
        )
        with pytest.raises(ObsError, match="unsupported trace version"):
            validate_trace(path)

    def test_validate_trace_accepts_a_real_sidecar(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(path):
            with obs.span("work"):
                obs.event("mark")
        valid, skipped = validate_trace(path)
        assert (valid, skipped) == (3, 0)
