"""Test package (explicit package so duplicate basenames import cleanly)."""
