"""Tests for the problem / local-reduction framework and the completeness registry."""

from __future__ import annotations

import pytest

from repro.exceptions import ReductionError, VerificationError
from repro.graphs import path_graph, star_graph
from repro.hypergraph import colorable_almost_uniform_hypergraph
from repro.maxis import get_approximator
from repro.reductions import (
    CF_MULTICOLORING,
    CompletenessStatus,
    LocalReduction,
    MAXIS_APPROXIMATION,
    MIS,
    Problem,
    ReductionOverhead,
    ReductionRun,
    VERTEX_COLORING,
    all_facts,
    cf_multicoloring_to_maxis_reduction,
    complete_problems,
    fact_for,
    facts_by_status,
    polylog_lambda,
    recommended_color_budget,
    summary_table,
    theoretical_oracle_calls,
)


class TestProblems:
    def test_mis_problem_verifier(self):
        g = path_graph(4)
        assert MIS.is_valid(g, {0, 2})
        assert not MIS.is_valid(g, {0, 1})
        assert not MIS.is_valid(g, {1})  # not maximal

    def test_coloring_problem_verifier(self):
        g = star_graph(3)
        assert VERTEX_COLORING.is_valid(g, {0: 0, 1: 1, 2: 1, 3: 1})
        assert not VERTEX_COLORING.is_valid(g, {0: 0, 1: 0, 2: 1, 3: 1})

    def test_maxis_approx_problem_verifier(self):
        g = star_graph(5)
        assert MAXIS_APPROXIMATION.is_valid((g, 1.0), set(range(1, 6)))
        assert not MAXIS_APPROXIMATION.is_valid((g, 2.0), {0})

    def test_cf_multicoloring_problem_verifier(self):
        from repro.coloring import Multicoloring

        hypergraph, planted = colorable_almost_uniform_hypergraph(n=12, m=6, k=2, seed=2)
        mc = Multicoloring({v: [c] for v, c in planted.items()})
        assert CF_MULTICOLORING.is_valid((hypergraph, 2), mc)
        assert not CF_MULTICOLORING.is_valid((hypergraph, 1), mc)


class TestOverhead:
    def test_polylog_check(self):
        assert ReductionOverhead(oracle_calls=3, locality_factor=2.0).is_polylog(1000)
        assert not ReductionOverhead(oracle_calls=10_000, locality_factor=2.0).is_polylog(100)

    def test_small_n_is_always_fine(self):
        assert ReductionOverhead(oracle_calls=999).is_polylog(1)


class TestPaperReduction:
    def _oracle(self, name="greedy-min-degree"):
        approximator = get_approximator(name)
        return lambda instance: approximator(instance[0])

    def test_reduction_solves_cf_multicoloring(self):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=20, m=12, k=3, seed=5)
        lam = 6.0
        reduction = cf_multicoloring_to_maxis_reduction(k=3, lam=lam)
        budget = recommended_color_budget(3, lam, hypergraph.num_edges())
        run = reduction.apply((hypergraph, budget), self._oracle())
        assert isinstance(run, ReductionRun)
        assert run.overhead.oracle_calls >= 1
        assert run.overhead.oracle_calls <= theoretical_oracle_calls(lam, hypergraph.num_edges())
        assert run.details["total_colors"] <= budget

    def test_reduction_verifies_solution_against_source_problem(self):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=16, m=8, k=2, seed=6)
        reduction = cf_multicoloring_to_maxis_reduction(k=2, lam=4.0)
        # A budget of 0 colors is unsatisfiable, so verification must fail.
        with pytest.raises(VerificationError):
            reduction.apply((hypergraph, 0), self._oracle())

    def test_overhead_is_polylog_for_polylog_lambda(self):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=30, m=15, k=3, seed=7)
        lam = polylog_lambda(hypergraph.num_vertices())
        reduction = cf_multicoloring_to_maxis_reduction(k=3, lam=lam)
        budget = recommended_color_budget(3, lam, hypergraph.num_edges())
        run = reduction.apply((hypergraph, budget), self._oracle())
        assert run.overhead.is_polylog(hypergraph.num_vertices())
        assert run.overhead.locality_factor == 2.0

    def test_invalid_parameters(self):
        with pytest.raises(ReductionError):
            cf_multicoloring_to_maxis_reduction(k=0, lam=2.0)
        with pytest.raises(ReductionError):
            cf_multicoloring_to_maxis_reduction(k=2, lam=0.0)

    def test_polylog_lambda_values(self):
        assert polylog_lambda(1) == 1.0
        assert polylog_lambda(1024) == pytest.approx(100.0)


class TestComposition:
    def test_compose_type_mismatch_rejected(self):
        trivial = Problem(name="trivial", description="", verify=lambda i, s: None)
        a = LocalReduction(MIS, VERTEX_COLORING, lambda i, o: ReductionRun(None, ReductionOverhead()))
        b = LocalReduction(MIS, trivial, lambda i, o: ReductionRun(None, ReductionOverhead()))
        with pytest.raises(ReductionError):
            a.compose(b)

    def test_compose_multiplies_overheads(self):
        identity = Problem(name="identity", description="", verify=lambda i, s: None)

        def outer_run(instance, oracle):
            oracle(instance)  # first call
            solution = oracle(instance)  # second call
            return ReductionRun(solution, ReductionOverhead(oracle_calls=2, locality_factor=3.0))

        def inner_run(instance, oracle):
            return ReductionRun(oracle(instance), ReductionOverhead(oracle_calls=1, locality_factor=2.0))

        outer = LocalReduction(identity, identity, outer_run, name="outer")
        inner = LocalReduction(identity, identity, inner_run, name="inner")
        composed = outer.compose(inner)
        run = composed.apply("instance", lambda x: x)
        assert run.overhead.oracle_calls == 2       # two inner runs, one call each
        assert run.overhead.locality_factor == 6.0  # 3 × 2
        assert run.details["inner_runs"] == 2

    def test_reduction_must_return_reduction_run(self):
        identity = Problem(name="identity2", description="", verify=lambda i, s: None)
        broken = LocalReduction(identity, identity, lambda i, o: "not-a-run")
        with pytest.raises(ReductionError):
            broken.apply("x", lambda v: v)


class TestRegistry:
    def test_maxis_approx_is_recorded_complete_with_paper_source(self):
        fact = fact_for("maxis-approx")
        assert fact is not None
        assert fact.status is CompletenessStatus.COMPLETE
        assert fact.source == "Maus19"

    def test_mis_is_recorded_open_for_completeness_but_member(self):
        fact = fact_for("mis")
        assert fact.status is CompletenessStatus.MEMBER

    def test_complete_problems_contains_known_entries(self):
        complete = set(complete_problems())
        assert {"network-decomposition", "conflict-free-multicoloring", "maxis-approx"} <= complete

    def test_unknown_problem_returns_none(self):
        assert fact_for("nonexistent-problem") is None

    def test_summary_table_shape(self):
        rows = summary_table()
        assert len(rows) == len(all_facts())
        assert all({"problem", "status", "source", "note"} <= set(r) for r in rows)

    def test_facts_by_status_partitions(self):
        total = sum(len(facts_by_status(s)) for s in CompletenessStatus)
        assert total == len(all_facts())
