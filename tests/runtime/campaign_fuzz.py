"""Campaign-level differential fuzzing: sharding, warm pools, kill+resume.

The campaign analogue of ``tests/fuzz/corpus.py``: every campaign spec is
a deterministic function of one integer seed (:func:`make_campaign_spec`),
the seed appears in the pytest id and every assertion message, and a
failing case is reproduced by ``make_campaign_spec(<seed>)``.

The central helper is :func:`assert_shard_exact`: executing a campaign as
``n`` sha256-stable shards and fusing the shard stores with
:func:`merge_shards` must reproduce the serial reference *exactly* —
pairwise-disjoint covering shards, identical per-task row content (minus
timing and cache flags), identical aggregate
:class:`~repro.analysis.records.ExperimentRecord`\\ s, and a byte-identical
``campaign_digest``.  The seeded test sweep layers the other execution
modes on top: a persistent two-worker :class:`WorkerPool` shared by all
fuzzed campaigns (warm starts), occasional fresh pools with other worker
counts, a kill+resume at a seeded cut point of the JSONL store, the
SQLite backend (including its own kill+resume via a seeded ``DELETE`` of
the results-table tail), the incremental-aggregate report path, and
compaction of both backends — every variant must land on the byte-exact
serial reference digest.

Collected by pytest via the ``python_files`` entry in ``pytest.ini``.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.runtime import (
    CampaignSpec,
    CampaignStore,
    SQLiteCampaignStore,
    WorkerPool,
    campaign_digest,
    campaign_records,
    merge_shards,
    open_store,
    records_from_summaries,
    run_campaign,
    task_shard_index,
)

from tests.runtime.test_tasks import NONDETERMINISTIC_ROW_FIELDS

#: Seeded specs the differential sweep runs (acceptance floor: 50).
FUZZ_SPEC_COUNT = 50

#: Shard counts exercised by the partition property tests.
SHARD_COUNTS = (1, 2, 3, 7)

#: Families/oracles the fuzzed campaigns draw from — all coordinates kept
#: feasible (k ≤ 2, n ≥ 2k + 2), so every fuzzed task completes.
_FAMILIES = ("colorable", "uniform", "interval", "almost-uniform")
_ORACLES = ("greedy-first-fit", "capped:greedy-first-fit", "greedy-min-degree")


def make_campaign_spec(seed: int) -> CampaignSpec:
    """Deterministically derive one small, fully-feasible campaign from ``seed``."""
    rng = random.Random(seed)
    families = tuple(rng.sample(_FAMILIES, rng.randint(1, 2)))
    sizes = tuple(
        (rng.randint(6, 12), rng.randint(3, 6)) for _ in range(rng.randint(1, 2))
    )
    return CampaignSpec(
        name=f"campaign-fuzz-{seed}",
        seed=rng.randrange(2**32),
        families=families,
        sizes=sizes,
        ks=(rng.randint(1, 2),),
        oracles=tuple(rng.sample(_ORACLES, rng.randint(1, 2))),
        lams=rng.choice(((2.0,), (2.0, 3.0))),
        replicates=rng.randint(1, 2),
    )


def spec_corpus(count: int, base_seed: int = 0):
    """Yield ``count`` campaign specs with seeds ``base_seed .. base_seed+count-1``."""
    return [make_campaign_spec(base_seed + i) for i in range(count)]


def _digest_of(spec: CampaignSpec, directory) -> str:
    return campaign_digest(campaign_records(spec, open_store(directory).rows()))


def _incremental_digest_of(spec: CampaignSpec, directory) -> str:
    """Digest via the persisted partial aggregates, not the full row log."""
    return campaign_digest(
        records_from_summaries(spec, open_store(directory).summaries())
    )


def _deterministic_rows(store: CampaignStore):
    """Latest row per key with the order/timing-dependent fields stripped."""
    return {
        key: {k: v for k, v in row.items() if k not in NONDETERMINISTIC_ROW_FIELDS}
        for key, row in store.latest_rows().items()
    }


def assert_shard_exact(spec: CampaignSpec, n_shards: int, base_dir) -> str:
    """Assert sharded-merged execution equals the serial reference, exactly.

    Runs the serial reference into ``base_dir/serial``, every shard into
    ``base_dir/shard<i>``, fuses the shards into ``base_dir/merged``, and
    asserts (1) the shards are a disjoint cover of the expansion, (2) the
    merged row set equals the serial rows key-for-key and field-for-field
    (minus timing/cache-flag fields), (3) the aggregate records and the
    ``campaign_digest`` are byte-identical.  Returns the reference digest
    so callers can pile further execution modes on top.
    """
    ctx = f"[campaign-fuzz spec={spec.name} n_shards={n_shards}]"
    base = Path(base_dir)
    shards = [spec.shard(index, n_shards) for index in range(n_shards)]
    shard_keys = [task.task_key for shard in shards for task in shard]
    assert len(shard_keys) == len(set(shard_keys)), f"{ctx} shards overlap"
    assert sorted(shard_keys) == sorted(t.task_key for t in spec.expand()), (
        f"{ctx} shard union is not the full task set"
    )

    reference = run_campaign(spec, base / "serial", workers=0)
    assert reference.failed == 0, f"{ctx} serial reference had failing tasks"
    serial_store = CampaignStore(base / "serial")
    serial_records = campaign_records(spec, serial_store.rows())
    serial_digest = campaign_digest(serial_records)

    shard_dirs = []
    for index in range(n_shards):
        stats = run_campaign(spec, base / f"shard{index}", shard=(index, n_shards))
        assert stats.executed == len(shards[index]), (
            f"{ctx} shard {index} executed {stats.executed} tasks, "
            f"expected {len(shards[index])}"
        )
        assert stats.failed == 0, f"{ctx} shard {index} had failing tasks"
        shard_dirs.append(base / f"shard{index}")

    merged = merge_shards(base / "merged", shard_dirs)
    assert _deterministic_rows(merged) == _deterministic_rows(serial_store), (
        f"{ctx} merged shard rows differ from the serial reference rows"
    )
    merged_records = campaign_records(spec, merged.rows())
    assert [r.to_dict() for r in merged_records] == [
        r.to_dict() for r in serial_records
    ], f"{ctx} merged aggregate records differ from the serial reference"
    merged_digest = campaign_digest(merged_records)
    assert merged_digest == serial_digest, (
        f"{ctx} merged digest {merged_digest[:12]} != serial {serial_digest[:12]}"
    )
    return serial_digest


@pytest.fixture(scope="module")
def shared_pool():
    """One persistent 2-worker pool shared by the whole fuzz sweep.

    This is the warm-start amortization feature under test: all 50+
    campaigns dispatch through the same worker processes.
    """
    with WorkerPool(2) as pool:
        yield pool


@pytest.mark.parametrize("seed", range(FUZZ_SPEC_COUNT))
def test_campaign_execution_modes_match_serial_reference(seed, tmp_path, shared_pool):
    """Sharded-merged, warm-pool and kill+resume all reproduce the serial digest."""
    spec = make_campaign_spec(seed)
    rng = random.Random(seed ^ 0x5EED)
    n_shards = rng.choice((2, 3, 5))
    ctx = f"[campaign-fuzz seed={seed} spec={spec.name} tasks={spec.num_tasks()}]"

    reference = assert_shard_exact(spec, n_shards, tmp_path)

    # Warm persistent pool (shared across every fuzzed campaign).
    expect_warm = shared_pool.warm
    pool_stats = run_campaign(spec, tmp_path / "pool", pool=shared_pool)
    assert pool_stats.pool_warm == expect_warm, f"{ctx} pool warmth misreported"
    assert pool_stats.failed == 0, f"{ctx} warm-pool run had failing tasks"
    assert _digest_of(spec, tmp_path / "pool") == reference, (
        f"{ctx} warm-pool digest diverged from the serial reference"
    )

    # Every tenth seed also runs a fresh pool with another worker count.
    if seed % 10 == 5:
        with WorkerPool(rng.choice((2, 3))) as fresh_pool:
            run_campaign(spec, tmp_path / "fresh-pool", pool=fresh_pool)
        assert _digest_of(spec, tmp_path / "fresh-pool") == reference, (
            f"{ctx} fresh-pool digest diverged from the serial reference"
        )

    # Kill+resume: truncate the serial JSONL at a seeded cut point (plus a
    # half-written tail line) and let the serial executor finish the rest.
    serial_results = tmp_path / "serial" / CampaignStore(tmp_path / "serial").results_path.name
    lines = serial_results.read_text(encoding="utf-8").splitlines(keepends=True)
    cut = rng.randrange(0, len(lines))
    killed = tmp_path / "killed"
    killed.mkdir()
    (killed / serial_results.name).write_text(
        "".join(lines[:cut]) + '{"task_key": "killed-mid-', encoding="utf-8"
    )
    killed_store = CampaignStore(killed)
    survivors = len(killed_store.completed_keys())
    resumed = run_campaign(spec, killed, workers=0)
    assert resumed.skipped == survivors, (
        f"{ctx} resume after cut={cut} skipped {resumed.skipped}, "
        f"expected {survivors} surviving rows"
    )
    assert resumed.executed == spec.num_tasks() - survivors, (
        f"{ctx} resume after cut={cut} executed {resumed.executed} tasks"
    )
    assert _digest_of(spec, killed) == reference, (
        f"{ctx} kill+resume (cut={cut}) digest diverged from the serial reference"
    )

    # Tracing is observational only: a traced serial run is
    # digest-identical to the untraced reference and leaves a
    # well-formed sidecar plus a metrics snapshot.
    traced = tmp_path / "traced"
    traced_stats = run_campaign(spec, traced, workers=0, trace=True)
    assert traced_stats.failed == 0, f"{ctx} traced run had failing tasks"
    assert _deterministic_rows(CampaignStore(traced)) == _deterministic_rows(
        CampaignStore(tmp_path / "serial")
    ), f"{ctx} traced rows differ from the untraced serial rows"
    assert _digest_of(spec, traced) == reference, (
        f"{ctx} traced digest diverged from the serial reference"
    )
    valid, trace_skipped = obs.validate_trace(traced / obs.TRACE_FILENAME)
    assert valid > 0 and trace_skipped == 0, (
        f"{ctx} traced sidecar malformed: valid={valid} skipped={trace_skipped}"
    )
    assert (traced / obs.METRICS_FILENAME).exists(), f"{ctx} metrics.json missing"

    # Incremental aggregation: the persisted partial aggregates feed the
    # same record builder as the full-row scan — digest-identical.
    assert _incremental_digest_of(spec, tmp_path / "serial") == reference, (
        f"{ctx} incremental-aggregate digest diverged from the full-row reference"
    )

    # SQLite backend: the same campaign through the indexed store, checked
    # via both the full-row path and the incremental-aggregate path.
    sqlite_dir = tmp_path / "sqlite"
    sqlite_stats = run_campaign(spec, sqlite_dir, workers=0, backend="sqlite")
    assert sqlite_stats.failed == 0, f"{ctx} sqlite run had failing tasks"
    sqlite_store = open_store(sqlite_dir)
    assert isinstance(sqlite_store, SQLiteCampaignStore), (
        f"{ctx} backend override did not select the sqlite store"
    )
    assert _digest_of(spec, sqlite_dir) == reference, (
        f"{ctx} sqlite digest diverged from the serial reference"
    )
    assert _incremental_digest_of(spec, sqlite_dir) == reference, (
        f"{ctx} sqlite incremental digest diverged from the serial reference"
    )

    # SQLite kill+resume: drop the tail of the results table at a seeded
    # cut (a crash between transactions) and let the executor finish.
    conn = sqlite_store._connect()
    sqlite_cut = rng.randrange(0, spec.num_tasks())
    with conn:
        conn.execute(
            "DELETE FROM results WHERE id > (SELECT COALESCE(MAX(id), 0) FROM"
            " (SELECT id FROM results ORDER BY id LIMIT ?))",
            (sqlite_cut,),
        )
    sqlite_store.close()
    sqlite_resumed = run_campaign(spec, sqlite_dir, workers=0)
    assert sqlite_resumed.skipped == sqlite_cut, (
        f"{ctx} sqlite resume after cut={sqlite_cut} skipped "
        f"{sqlite_resumed.skipped} tasks"
    )
    assert _digest_of(spec, sqlite_dir) == reference, (
        f"{ctx} sqlite kill+resume (cut={sqlite_cut}) digest diverged"
    )

    # Compaction is digest-preserving on both backends, even with a
    # superseded duplicate row planted on top of the resumed stores.
    for directory in (killed, sqlite_dir):
        store = open_store(directory)
        store.append(store.rows()[0])
        stats = store.compact()
        assert stats.rows_dropped >= 1, f"{ctx} compaction dropped nothing"
        assert _digest_of(spec, directory) == reference, (
            f"{ctx} compacted {store.backend} digest diverged from the reference"
        )
        assert _incremental_digest_of(spec, directory) == reference, (
            f"{ctx} compacted {store.backend} incremental digest diverged"
        )


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@pytest.mark.parametrize("seed", range(FUZZ_SPEC_COUNT))
def test_shard_partition_is_disjoint_covering_and_ordered(seed, n_shards):
    """CampaignSpec.shard is a disjoint, covering, order-preserving partition."""
    spec = make_campaign_spec(seed)
    ctx = f"[campaign-fuzz seed={seed} n_shards={n_shards}]"
    expansion = [task.task_key for task in spec.expand()]
    position = {key: i for i, key in enumerate(expansion)}
    seen = []
    for index in range(n_shards):
        shard = [task.task_key for task in spec.shard(index, n_shards)]
        assert all(task_shard_index(key, n_shards) == index for key in shard), (
            f"{ctx} shard {index} holds foreign keys"
        )
        positions = [position[key] for key in shard]
        assert positions == sorted(positions), f"{ctx} shard {index} reorders tasks"
        seen.extend(shard)
    assert len(seen) == len(set(seen)), f"{ctx} shards overlap"
    assert sorted(seen) == sorted(expansion), f"{ctx} shard union != expansion"


def test_shard_assignment_is_stable_across_processes():
    """sha256 partition: immune to PYTHONHASHSEED (no hash() randomization)."""
    spec = make_campaign_spec(0)
    expected = {t.task_key: task_shard_index(t.task_key, 7) for t in spec.expand()}
    repo_root = Path(__file__).resolve().parents[2]
    script = (
        "import json; "
        "from tests.runtime.campaign_fuzz import make_campaign_spec; "
        "from repro.runtime import task_shard_index; "
        "spec = make_campaign_spec(0); "
        "print(json.dumps({t.task_key: task_shard_index(t.task_key, 7) "
        "for t in spec.expand()}))"
    )
    for hash_seed in ("0", "1", "424242"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo_root / "src"), str(repo_root)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert json.loads(result.stdout) == expected, (
            f"shard assignment drifted under PYTHONHASHSEED={hash_seed}"
        )
