"""Chaos harness: supervised campaigns under deterministic fault injection.

Every test here drives seeded campaign specs through the
:class:`ShardCoordinator` while a :class:`FaultPlan` injects worker
kills, hangs and synthetic failures, and asserts the supervised run
*converges to the fault-free serial digest* — the end-to-end guarantee
the whole fault-tolerance stack (heartbeats, watchdog timeouts, bounded
retries, restart-with-backoff, incremental shard merge) exists to
provide.

Fault decisions are pure functions of ``(seed, salt, task_key,
attempt)``, so each seed replays the same fault schedule on every pytest
run; the ``REPRO_CHAOS`` gate is opened per-test via monkeypatch, never
leaked into the environment.  The corpus is split between the real
subprocess executor (kills included — only a subprocess can die without
taking pytest down) and the in-process inline executor (hangs/failures
only, much cheaper), totalling 25 seeded specs plus targeted recovery
tests.
"""

import dataclasses

import pytest

from repro import obs
from repro.exceptions import SupervisionError
from repro.runtime import (
    CampaignSpec,
    CampaignStore,
    FaultPlan,
    InlineExecutor,
    LocalProcessExecutor,
    ShardCoordinator,
    campaign_digest,
    campaign_records,
    open_store,
    run_campaign,
)
from repro.runtime.faults import CHAOS_ENV_VAR

#: Subprocess corpus (kills + hangs + failures) — expensive, keep small.
SUBPROCESS_SEEDS = tuple(range(10))
#: Inline corpus (hangs + failures only) — cheap, rounds the total to 25.
INLINE_SEEDS = tuple(range(100, 115))


@pytest.fixture
def chaos_gate(monkeypatch):
    monkeypatch.setenv(CHAOS_ENV_VAR, "1")


def chaos_spec(seed: int) -> CampaignSpec:
    """A small (4-task) campaign whose grid still spans two shards."""
    return CampaignSpec(
        name=f"chaos-{seed}",
        seed=seed,
        families=("uniform",),
        sizes=((8, 6), (10, 7)),
        ks=(3,),
        oracles=("greedy-first-fit", "greedy-min-degree"),
        lams=(2.0,),
        replicates=1,
    )


def serial_digest(spec: CampaignSpec, tmp_path) -> str:
    reference = tmp_path / "serial-reference"
    run_campaign(spec, reference, workers=0)
    return campaign_digest(campaign_records(spec, open_store(reference).rows()))


def supervise(spec, tmp_path, executor, plan, **overrides):
    defaults = dict(
        n_shards=2,
        heartbeat_timeout_s=8.0,
        max_restarts=6,
        base_backoff_s=0.01,
        poll_interval_s=0.01,
        task_timeout_s=0.75,
        # retry=None: chaos faults are transient, so nothing may be
        # written off as exhausted — every re-dispatch re-executes the
        # survivors' failures with a fresh (salt, attempt) fault draw.
        retry=None,
        chaos=plan,
        restart_failed_shards=True,
        max_wall_clock_s=120.0,
    )
    defaults.update(overrides)
    return ShardCoordinator(spec, tmp_path / "supervised", executor, **defaults)


def assert_converged(report, spec, expected, seed):
    context = (
        f"seed={seed} shards="
        f"{[(s.status, s.dispatches, s.stale_kills) for s in report.shards]}"
    )
    assert report.poisoned == [], f"poisoned shards under chaos: {context}"
    assert report.status_counts == {"done": spec.num_tasks()}, context
    assert report.digest == expected, f"digest diverged from serial: {context}"


class TestChaosCorpusSubprocess:
    # Both store backends ride the same corpus: the spec's ``store`` field
    # travels through spec.json to every shard subprocess, so the sqlite
    # leg proves the indexed backend's kill+resume path converges too.
    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    @pytest.mark.parametrize("seed", SUBPROCESS_SEEDS)
    def test_supervised_run_converges_under_kills_hangs_and_failures(
        self, tmp_path, chaos_gate, seed, backend
    ):
        spec = dataclasses.replace(chaos_spec(seed), store=backend)
        expected = serial_digest(spec, tmp_path)
        plan = FaultPlan(p_kill=0.1, p_hang=0.05, p_fail=0.15, seed=seed, hang_s=60.0)
        report = supervise(spec, tmp_path, LocalProcessExecutor(), plan).run()
        assert_converged(report, spec, expected, seed)
        results_name = "results.sqlite" if backend == "sqlite" else "results.jsonl"
        assert (tmp_path / "supervised" / results_name).exists(), (
            f"seed={seed}: the supervised store is not the {backend} backend"
        )


class TestChaosCorpusInline:
    @pytest.mark.parametrize("seed", INLINE_SEEDS)
    def test_supervised_run_converges_under_hangs_and_failures(
        self, tmp_path, chaos_gate, seed
    ):
        spec = chaos_spec(seed)
        expected = serial_digest(spec, tmp_path)
        # No kills: the inline executor runs shards in the pytest process.
        plan = FaultPlan(p_hang=0.1, p_fail=0.25, seed=seed, hang_s=60.0)
        report = supervise(
            spec, tmp_path, InlineExecutor(), plan, task_timeout_s=0.3
        ).run()
        assert_converged(report, spec, expected, seed)


class TestChaosWithTracing:
    """Tracing under fault injection: observational only, kill-tolerant.

    Runs the subprocess chaos leg with ``--trace`` plumbed through to
    every shard worker and asserts (1) the digest still converges to the
    fault-free serial reference — instrumentation must not perturb
    results even while workers are being killed — and (2) every sidecar
    is well-formed JSONL after the kills: truncated tail lines are
    terminated on restart, so the validator sees only skippable
    fragments, never structurally invalid records.
    """

    @pytest.mark.parametrize("seed", SUBPROCESS_SEEDS[:3])
    def test_traced_chaos_run_converges_and_sidecars_stay_well_formed(
        self, tmp_path, chaos_gate, seed
    ):
        spec = chaos_spec(seed)
        expected = serial_digest(spec, tmp_path)
        plan = FaultPlan(p_kill=0.1, p_hang=0.05, p_fail=0.15, seed=seed, hang_s=60.0)
        coordinator = supervise(
            spec, tmp_path, LocalProcessExecutor(), plan, trace=True
        )
        report = coordinator.run()
        assert_converged(report, spec, expected, seed)

        sidecars = [tmp_path / "supervised" / obs.TRACE_FILENAME] + [
            coordinator.shard_dir(index) / obs.TRACE_FILENAME
            for index in range(coordinator.n_shards)
        ]
        for sidecar in sidecars:
            valid, skipped = obs.validate_trace(sidecar)
            assert valid > 0, f"seed={seed}: empty trace sidecar {sidecar}"
        shard_records = [
            record
            for sidecar in sidecars[1:]
            for record in obs.read_trace(sidecar)
        ]
        task_spans = [
            r for r in shard_records if r["type"] == "span" and r["name"] == "task"
        ]
        done = [r for r in task_spans if r["attrs"].get("status") == "done"]
        # Every task eventually traced a done span (re-dispatches append
        # to the same shard sidecar, headers marking each restart).
        assert {r["attrs"]["task_key"] for r in done} == {
            t.task_key for t in spec.expand()
        }, f"seed={seed}: traced done spans do not cover the grid"


class TestTargetedRecovery:
    def test_certain_hang_trips_the_watchdog_then_recovers(self, tmp_path, chaos_gate):
        spec = chaos_spec(1000)
        expected = serial_digest(spec, tmp_path)
        # Every first-dispatch task hangs; re-dispatches are clean.
        plan = FaultPlan(p_hang=1.0, max_salt=1, hang_s=60.0)
        report = supervise(
            spec, tmp_path, InlineExecutor(), plan, task_timeout_s=0.2
        ).run()
        assert_converged(report, spec, expected, seed="hang-all")
        # The watchdog really fired: superseded timeout rows are in the
        # merged history, and every shard needed exactly one restart.
        merged = CampaignStore(tmp_path / "supervised")
        statuses = [row["status"] for row in merged.rows()]
        assert statuses.count("timeout") == spec.num_tasks()
        assert [shard.restarts for shard in report.shards] == [1, 1]

    def test_certain_kill_poisons_the_shards_without_retrying_forever(
        self, tmp_path, chaos_gate
    ):
        spec = chaos_spec(2000)
        plan = FaultPlan(p_kill=1.0)  # no max_salt: every dispatch dies
        coordinator = supervise(
            spec, tmp_path, LocalProcessExecutor(), plan, max_restarts=2
        )
        report = coordinator.run()
        # Both shards are quarantined after exactly 1 + max_restarts
        # dispatches — bounded, reported, never an infinite restart loop.
        assert report.poisoned == [0, 1]
        assert [shard.dispatches for shard in report.shards] == [3, 3]
        assert not report.ok

    def test_wall_clock_bound_is_hard(self, tmp_path, chaos_gate):
        spec = chaos_spec(3000)
        # Hangs with no watchdog and a heartbeat deadline the bound beats:
        # only max_wall_clock_s can end this run.
        plan = FaultPlan(p_hang=1.0, hang_s=600.0)
        coordinator = supervise(
            spec,
            tmp_path,
            LocalProcessExecutor(),
            plan,
            task_timeout_s=None,
            heartbeat_timeout_s=600.0,
            max_wall_clock_s=2.0,
        )
        with pytest.raises(SupervisionError, match="wall-clock"):
            coordinator.run()

    def test_injected_failures_are_retried_within_one_run(self, tmp_path, chaos_gate):
        from repro.runtime import RetryPolicy

        spec = chaos_spec(4000)
        expected = serial_digest(spec, tmp_path)
        # Synthetic failures at p=0.5: every retry gets a fresh fault draw
        # (decide() hashes the attempt), so the bounded retry policy
        # recovers them inside a single serial run — no supervisor needed.
        out = tmp_path / "retry-run"
        stats = run_campaign(
            spec,
            out,
            workers=0,
            chaos=FaultPlan(p_fail=0.5, seed=4000),
            retry=RetryPolicy(max_attempts=6),
        )
        assert stats.failed == 0
        assert stats.retried > 0  # at least one injected failure recovered
        records = campaign_records(spec, CampaignStore(out).rows())
        assert campaign_digest(records) == expected
