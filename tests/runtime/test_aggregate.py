"""Aggregation tests: determinism, digest semantics, record content."""

from __future__ import annotations

import random

from repro.analysis.records import ExperimentRecord
from repro.runtime import (
    CampaignStore,
    campaign_digest,
    campaign_records,
    done_rows,
    execute_task,
    failed_rows,
    phase_decay_record,
    run_campaign,
    throughput_record,
)
from repro.runtime.scheduler import CampaignRunStats

from tests.runtime.test_spec import small_spec


def completed_rows(spec):
    return [execute_task(p) for p in spec.task_payloads()]


class TestDeterminism:
    def test_records_insensitive_to_row_order(self):
        spec = small_spec()
        rows = completed_rows(spec)
        shuffled = list(rows)
        random.Random(3).shuffle(shuffled)
        assert campaign_digest(campaign_records(spec, rows)) == campaign_digest(
            campaign_records(spec, shuffled)
        )

    def test_digest_insensitive_to_timing_fields(self):
        spec = small_spec()
        rows = completed_rows(spec)
        slowed = [dict(r, wall_time_s=999.0, happy_check_wall_time_s=99.0) for r in rows]
        assert campaign_digest(campaign_records(spec, rows)) == campaign_digest(
            campaign_records(spec, slowed)
        )

    def test_digest_sensitive_to_result_content(self):
        spec = small_spec()
        rows = completed_rows(spec)
        tampered = [dict(r) for r in rows]
        tampered[0] = dict(tampered[0], result=dict(tampered[0]["result"], color_bound=1))
        assert campaign_digest(campaign_records(spec, rows)) != campaign_digest(
            campaign_records(spec, tampered)
        )

    def test_last_write_wins_like_the_store(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path, workers=0)
        store = CampaignStore(tmp_path)
        rows = store.rows()
        # Duplicate an early row as a stale failure *before* its done row.
        stale = dict(rows[0], status="failed")
        assert campaign_digest(campaign_records(spec, [stale] + rows)) == campaign_digest(
            campaign_records(spec, rows)
        )


class TestRowSelection:
    def test_done_and_failed_partition_latest_rows(self):
        rows = [
            {"task_key": "b", "status": "done"},
            {"task_key": "a", "status": "failed"},
            {"task_key": "c", "status": "failed"},
            {"task_key": "c", "status": "done"},
        ]
        assert [r["task_key"] for r in done_rows(rows)] == ["b", "c"]
        assert [r["task_key"] for r in failed_rows(rows)] == ["a"]


class TestRecordContent:
    def test_phase_decay_rows_are_monotone_and_complete(self):
        spec = small_spec()
        rows = completed_rows(spec)
        record = phase_decay_record(spec, rows)
        assert record.experiment == "C1"
        assert record.metadata["tasks_done"] == spec.num_tasks()
        assert record.metadata["tasks_failed"] == 0
        assert record.metadata["spec_digest"] == spec.digest()
        by_oracle = {}
        for row in record.rows:
            by_oracle.setdefault(row["oracle"], []).append(row)
        assert set(by_oracle) == set(spec.oracles)
        for oracle_rows in by_oracle.values():
            fractions = [r["mean_remaining_fraction"] for r in oracle_rows]
            assert all(later <= earlier for earlier, later in zip(fractions, fractions[1:]))
            assert fractions[-1] == 0.0  # every campaign task finished
            assert all(0 <= f <= 1 for f in fractions)
            assert all(r["active_tasks"] <= r["tasks"] for r in oracle_rows)

    def test_color_budget_rows_respect_bounds(self):
        spec = small_spec()
        record = campaign_records(spec, completed_rows(spec))[1]
        assert record.experiment == "C2"
        assert {(r["oracle"], r["k"]) for r in record.rows} == {
            (oracle, k) for oracle in spec.oracles for k in spec.ks
        }
        for row in record.rows:
            assert row["mean_phases"] <= row["max_phases"]
            assert row["mean_total_colors"] <= row["max_total_colors"]
            assert 0 <= row["within_color_bound_fraction"] <= 1

    def test_failed_rows_are_counted_but_not_aggregated(self):
        spec = small_spec()
        rows = completed_rows(spec)
        rows.append({"task_key": "zz-extra", "status": "failed", "error": "boom"})
        records = campaign_records(spec, rows)
        for record in records:
            assert record.metadata["tasks_failed"] == 1
            assert record.metadata["tasks_done"] == spec.num_tasks()

    def test_records_round_trip_through_experiment_record_json(self):
        spec = small_spec()
        for record in campaign_records(spec, completed_rows(spec)):
            restored = ExperimentRecord.from_json(record.to_json())
            assert restored.to_dict() == record.to_dict()

    def test_throughput_record_reports_rates(self):
        spec = small_spec()
        stats = CampaignRunStats(
            campaign=spec.name,
            total_tasks=8,
            skipped=2,
            executed=6,
            failed=1,
            workers=4,
            wall_time_s=2.0,
        )
        record = throughput_record(spec, [stats])
        assert record.experiment == "C3"
        (row,) = record.rows
        assert row["tasks_per_s"] == 3.0
        assert row["workers"] == 4
        assert row["shard"] == "-"
        assert row["pool_warm"] is False
        assert row["cache_hits"] == row["cache_misses"] == 0

    def test_throughput_record_carries_shard_and_warm_stats(self):
        spec = small_spec()
        stats = CampaignRunStats(
            campaign=spec.name,
            total_tasks=8,
            skipped=0,
            executed=4,
            failed=0,
            workers=2,
            wall_time_s=1.0,
            shard=(1, 2),
            pool_warm=True,
            cache_hits=3,
            cache_misses=1,
        )
        (row,) = throughput_record(spec, [stats]).rows
        assert row["shard"] == "1/2"
        assert row["pool_warm"] is True
        assert (row["cache_hits"], row["cache_misses"]) == (3, 1)
        assert stats.cache_hit_ratio == 0.75

    def test_empty_campaign_produces_empty_rows(self):
        spec = small_spec()
        records = campaign_records(spec, [])
        assert all(record.rows == [] for record in records)
        assert campaign_digest(records) == campaign_digest(campaign_records(spec, []))
