"""Unit tests for the deterministic fault-injection plans."""

import pytest

from repro.exceptions import CampaignError, FaultInjectionError
from repro.runtime.faults import (
    CHAOS_ENV_VAR,
    FAULT_MODES,
    FaultPlan,
    chaos_enabled,
    inject_fault,
    require_chaos,
)


class TestValidation:
    def test_probabilities_must_lie_in_unit_interval(self):
        with pytest.raises(CampaignError, match="p_kill"):
            FaultPlan(p_kill=1.5)
        with pytest.raises(CampaignError, match="p_hang"):
            FaultPlan(p_hang=-0.1)
        with pytest.raises(CampaignError, match="p_fail"):
            FaultPlan(p_fail="0.3")

    def test_probabilities_must_sum_to_at_most_one(self):
        with pytest.raises(CampaignError, match="sum"):
            FaultPlan(p_kill=0.5, p_hang=0.4, p_fail=0.2)
        FaultPlan(p_kill=0.5, p_hang=0.3, p_fail=0.2)  # exactly 1 is fine

    def test_salt_and_hang_validation(self):
        with pytest.raises(CampaignError, match="salt"):
            FaultPlan(salt=-1)
        with pytest.raises(CampaignError, match="hang_s"):
            FaultPlan(hang_s=0)
        with pytest.raises(CampaignError, match="seed"):
            FaultPlan(seed="x")


class TestParse:
    def test_cli_form_round_trips(self):
        plan = FaultPlan.parse("0.1,0.05,0.2", seed=7, salt=2)
        assert (plan.p_kill, plan.p_hang, plan.p_fail) == (0.1, 0.05, 0.2)
        assert (plan.seed, plan.salt) == (7, 2)

    @pytest.mark.parametrize("text", ["0.1,0.2", "0.1,0.2,0.3,0.4", "a,b,c"])
    def test_malformed_text_is_refused(self, text):
        with pytest.raises(CampaignError, match="chaos"):
            FaultPlan.parse(text)

    def test_payload_round_trip(self):
        plan = FaultPlan(p_kill=0.2, p_fail=0.1, seed=3, salt=1, max_salt=4)
        assert FaultPlan.from_payload(plan.to_payload()) == plan

    def test_cli_args_reproduce_the_plan(self):
        plan = FaultPlan(p_kill=0.25, p_hang=0.5, seed=9, salt=3, max_salt=5)
        args = plan.cli_args()
        assert args[:2] == ["--chaos", "0.25,0.5,0"]
        assert args[2:] == [
            "--chaos-seed", "9", "--chaos-salt", "3", "--chaos-max-salt", "5",
        ]


class TestDecide:
    def test_decisions_are_deterministic(self):
        plan = FaultPlan(p_kill=0.3, p_hang=0.3, p_fail=0.3, seed=11)
        keys = [f"task-{i}" for i in range(50)]
        first = [plan.decide(key) for key in keys]
        assert first == [plan.decide(key) for key in keys]
        assert set(first) <= set(FAULT_MODES) | {None}
        # With 90% total fault mass, 50 keys see every mode in practice.
        assert set(FAULT_MODES) <= set(first)

    def test_decisions_vary_with_salt_and_attempt(self):
        plan = FaultPlan(p_kill=0.5, seed=1)
        keys = [f"task-{i}" for i in range(40)]
        by_salt = [plan.decide(k) for k in keys]
        resalted = plan.with_salt(1)
        assert [resalted.decide(k) for k in keys] != by_salt
        assert [plan.decide(k, attempt=2) for k in keys] != by_salt

    def test_zero_probability_plan_never_fires(self):
        plan = FaultPlan(seed=5)
        assert all(plan.decide(f"t{i}") is None for i in range(100))

    def test_max_salt_silences_later_dispatches(self):
        plan = FaultPlan(p_kill=1.0, max_salt=1)
        assert plan.decide("t") == "kill"
        assert plan.with_salt(1).decide("t") is None
        assert plan.with_salt(2).decide("t") is None


class TestGating:
    def test_chaos_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
        assert not chaos_enabled()
        with pytest.raises(CampaignError, match=CHAOS_ENV_VAR):
            require_chaos()

    def test_chaos_enabled_by_env_flag(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "1")
        assert chaos_enabled()
        require_chaos()


class TestInjectFault:
    def test_fail_mode_raises_fault_injection_error(self):
        plan = FaultPlan(p_fail=1.0).to_payload()
        with pytest.raises(FaultInjectionError, match="synthetic"):
            inject_fault(plan, "task-x", 1)

    def test_no_fault_is_a_no_op(self):
        inject_fault(FaultPlan().to_payload(), "task-x", 1)

    def test_hang_mode_sleeps_for_hang_s(self, monkeypatch):
        slept = []
        monkeypatch.setattr("repro.runtime.faults.time.sleep", slept.append)
        inject_fault(FaultPlan(p_hang=1.0, hang_s=12.5).to_payload(), "task-x", 1)
        assert slept == [12.5]

    def test_kill_mode_exits_the_process(self, monkeypatch):
        codes = []
        monkeypatch.setattr("repro.runtime.faults.os._exit", codes.append)
        inject_fault(FaultPlan(p_kill=1.0).to_payload(), "task-x", 1)
        assert codes == [137]
