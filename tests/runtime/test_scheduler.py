"""Scheduler tests: serial-vs-parallel byte identity, resume, failure isolation,
persistent worker pools, sharded runs, and the no-pool-when-idle regression."""

from __future__ import annotations

import pytest

from repro.exceptions import CampaignError
from repro.runtime import (
    CampaignSpec,
    CampaignStore,
    WorkerPool,
    campaign_digest,
    campaign_records,
    execute_task,
    run_campaign,
    task_shard_index,
)

from tests.runtime.test_spec import small_spec
from tests.runtime.test_tasks import NONDETERMINISTIC_ROW_FIELDS


def digest_of(spec: CampaignSpec, directory) -> str:
    return campaign_digest(campaign_records(spec, CampaignStore(directory).rows()))


def _forbid_pool_spawn(monkeypatch):
    """Make any multiprocessing.Pool construction fail the test."""
    import multiprocessing

    def boom(*args, **kwargs):
        raise AssertionError("multiprocessing.Pool must not be constructed here")

    monkeypatch.setattr(multiprocessing, "Pool", boom)


class TestSerialExecutor:
    def test_runs_every_task(self, tmp_path):
        spec = small_spec()
        stats = run_campaign(spec, tmp_path, workers=0)
        assert stats.total_tasks == spec.num_tasks()
        assert stats.executed == spec.num_tasks()
        assert stats.skipped == stats.failed == 0
        assert stats.workers == 1
        assert stats.tasks_per_s > 0
        store = CampaignStore(tmp_path)
        assert store.completed_keys() == {p["task_key"] for p in spec.task_payloads()}

    def test_rerun_skips_everything(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path, workers=0)
        again = run_campaign(spec, tmp_path, workers=0)
        assert again.executed == 0
        assert again.skipped == spec.num_tasks()
        assert again.tasks_per_s == 0.0

    def test_negative_workers_rejected(self, tmp_path):
        with pytest.raises(CampaignError):
            run_campaign(small_spec(), tmp_path, workers=-1)

    def test_non_positive_chunk_size_rejected(self, tmp_path):
        with pytest.raises(CampaignError):
            run_campaign(small_spec(), tmp_path, workers=2, chunk_size=-1)
        with pytest.raises(CampaignError):
            run_campaign(small_spec(), tmp_path, workers=2, chunk_size=0)

    def test_on_row_callback_sees_every_row(self, tmp_path):
        spec = small_spec()
        seen = []
        run_campaign(spec, tmp_path, workers=0, on_row=lambda row: seen.append(row["task_key"]))
        assert sorted(seen) == sorted(p["task_key"] for p in spec.task_payloads())


class TestParallelByteIdentity:
    def test_pool_run_matches_serial_digest(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "serial", workers=0)
        stats = run_campaign(spec, tmp_path / "pool", workers=2)
        assert stats.executed == spec.num_tasks()
        assert stats.workers == 2
        assert digest_of(spec, tmp_path / "serial") == digest_of(spec, tmp_path / "pool")

    def test_pool_rows_match_serial_rows_except_timing(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "serial", workers=0)
        run_campaign(spec, tmp_path / "pool", workers=2, chunk_size=1)
        serial = {
            r["task_key"]: {
                k: v for k, v in r.items() if k not in NONDETERMINISTIC_ROW_FIELDS
            }
            for r in CampaignStore(tmp_path / "serial").rows()
        }
        pool = {
            r["task_key"]: {
                k: v for k, v in r.items() if k not in NONDETERMINISTIC_ROW_FIELDS
            }
            for r in CampaignStore(tmp_path / "pool").rows()
        }
        assert serial == pool

    def test_on_row_callback_fires_in_pool_mode(self, tmp_path):
        spec = small_spec()
        seen = []
        run_campaign(
            spec, tmp_path, workers=2, on_row=lambda row: seen.append(row["task_key"])
        )
        assert len(seen) == spec.num_tasks()


class TestResume:
    def test_resume_after_kill_converges_to_same_aggregate(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "ref", workers=0)
        reference = digest_of(spec, tmp_path / "ref")

        run_campaign(spec, tmp_path / "killed", workers=0)
        store = CampaignStore(tmp_path / "killed")
        lines = store.results_path.read_text().splitlines(keepends=True)
        # Simulate a kill: drop two completed rows and leave half a line.
        store.results_path.write_text("".join(lines[:-2]) + '{"task_key": "par')
        assert len(store.completed_keys()) == spec.num_tasks() - 2

        resumed = run_campaign(spec, tmp_path / "killed", workers=0)
        assert resumed.skipped == spec.num_tasks() - 2
        assert resumed.executed == 2
        assert digest_of(spec, tmp_path / "killed") == reference

    def test_parallel_resume_matches_serial_reference(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "ref", workers=0)
        store = CampaignStore(tmp_path / "par")
        store.initialize(spec)
        # Pre-complete half the campaign out of order, then resume with a pool.
        payloads = spec.task_payloads()
        for payload in reversed(payloads[: len(payloads) // 2]):
            store.append(execute_task(payload))
        resumed = run_campaign(spec, tmp_path / "par", workers=2)
        assert resumed.skipped == len(payloads) // 2
        assert digest_of(spec, tmp_path / "par") == digest_of(spec, tmp_path / "ref")

    def test_stale_instance_seed_rows_are_reexecuted(self, tmp_path):
        # A store written under an older seed-derivation scheme must not
        # satisfy the resume skip-set: its "done" rows describe different
        # instances.  Re-execution supersedes them (last write wins).
        spec = small_spec()
        run_campaign(spec, tmp_path / "ref", workers=0)
        store = CampaignStore(tmp_path / "stale")
        store.initialize(spec)
        for payload in spec.task_payloads():
            row = execute_task(dict(payload, instance_seed=payload["instance_seed"] ^ 1))
            store.append(dict(row, task_key=payload["task_key"]))
        resumed = run_campaign(spec, tmp_path / "stale", workers=0)
        assert resumed.skipped == 0
        assert resumed.executed == spec.num_tasks()
        assert digest_of(spec, tmp_path / "stale") == digest_of(spec, tmp_path / "ref")

    def test_directory_bound_to_other_campaign_rejected(self, tmp_path):
        run_campaign(small_spec(), tmp_path, workers=0)
        with pytest.raises(CampaignError, match="refusing"):
            run_campaign(small_spec(seed=99), tmp_path, workers=0)


class TestNoIdlePoolSpawn:
    def test_completed_store_spawns_no_worker_processes(self, tmp_path, monkeypatch):
        # Regression: resuming a fully-completed campaign with workers > 1
        # must return before any pool is constructed.
        spec = small_spec()
        run_campaign(spec, tmp_path, workers=0)
        _forbid_pool_spawn(monkeypatch)
        stats = run_campaign(spec, tmp_path, workers=4)
        assert stats.executed == 0
        assert stats.skipped == spec.num_tasks()

    def test_completed_store_leaves_persistent_pool_unstarted(self, tmp_path, monkeypatch):
        spec = small_spec()
        run_campaign(spec, tmp_path, workers=0)
        _forbid_pool_spawn(monkeypatch)
        with WorkerPool(2) as pool:
            stats = run_campaign(spec, tmp_path, pool=pool)
            assert stats.executed == 0
            assert not pool.started
            assert not stats.pool_warm


class TestWorkerPool:
    def test_reuse_across_campaigns_reports_warm_start(self, tmp_path):
        spec_a = small_spec()
        spec_b = small_spec(seed=23)
        with WorkerPool(2) as pool:
            cold = run_campaign(spec_a, tmp_path / "a", pool=pool)
            warm = run_campaign(spec_b, tmp_path / "b", pool=pool)
            assert not cold.pool_warm
            assert warm.pool_warm
            assert cold.workers == warm.workers == 2
            assert pool.runs_served == 2
        run_campaign(spec_a, tmp_path / "ref", workers=0)
        assert digest_of(spec_a, tmp_path / "a") == digest_of(spec_a, tmp_path / "ref")

    def test_pool_overrides_workers_argument(self, tmp_path):
        spec = small_spec()
        with WorkerPool(2) as pool:
            stats = run_campaign(spec, tmp_path, workers=0, pool=pool)
        assert stats.workers == 2
        assert pool.runs_served == 1

    def test_closed_pool_rejected(self, tmp_path):
        pool = WorkerPool(2)
        pool.close()
        with pytest.raises(CampaignError, match="closed"):
            run_campaign(small_spec(), tmp_path, pool=pool)

    def test_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool.close()
        pool.close()

    @pytest.mark.parametrize("workers", [0, -1, 1.5, True])
    def test_invalid_worker_count_rejected(self, workers):
        with pytest.raises(CampaignError):
            WorkerPool(workers)

    def test_warm_pool_keeps_worker_instance_caches(self, tmp_path):
        # Same campaign into two stores through one pool: the second run's
        # instance builds are served from the worker's warm cache.  One
        # worker, so every instance is guaranteed to be cached where the
        # second run's tasks land.
        spec = small_spec(families=("colorable",), sizes=((12, 8),))
        with WorkerPool(1) as pool:
            run_campaign(spec, tmp_path / "a", pool=pool)
            warm = run_campaign(spec, tmp_path / "b", pool=pool)
        assert warm.pool_warm
        assert warm.cache_hits == spec.num_tasks()
        assert warm.cache_misses == 0


class TestShardedRuns:
    def test_shards_partition_the_executed_tasks(self, tmp_path):
        spec = small_spec()
        keys = []
        for index in range(3):
            stats = run_campaign(spec, tmp_path / f"shard{index}", shard=(index, 3))
            assert stats.shard == (index, 3)
            shard_keys = CampaignStore(tmp_path / f"shard{index}").completed_keys()
            assert stats.executed == len(shard_keys)
            assert all(task_shard_index(k, 3) == index for k in shard_keys)
            keys.extend(shard_keys)
        assert sorted(keys) == sorted(p["task_key"] for p in spec.task_payloads())

    def test_shard_resume_skips_only_its_own_completed_tasks(self, tmp_path):
        spec = small_spec()
        first = run_campaign(spec, tmp_path, shard=(0, 2))
        again = run_campaign(spec, tmp_path, shard=(0, 2))
        assert again.executed == 0
        assert again.skipped == first.executed

    def test_out_of_range_shard_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="shard index"):
            run_campaign(small_spec(), tmp_path, shard=(2, 2))

    def test_malformed_shard_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="pair"):
            run_campaign(small_spec(), tmp_path, shard=(1, 2, 3))


class TestCacheStats:
    def test_serial_run_counts_oracle_sharing_hits(self, tmp_path):
        from repro.runtime import INSTANCE_CACHE

        INSTANCE_CACHE.clear()
        # 2 oracles per grid point: half the instance builds are hits.
        spec = small_spec(families=("colorable",))
        stats = run_campaign(spec, tmp_path, workers=0)
        assert stats.cache_hits + stats.cache_misses == spec.num_tasks()
        assert stats.cache_hits == spec.num_tasks() // 2
        assert stats.cache_hit_ratio == 0.5
        counts = CampaignStore(tmp_path).cache_counts()
        assert counts == {
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
        }


class TestFailureIsolation:
    def test_infeasible_grid_point_fails_without_stopping_the_campaign(self, tmp_path):
        # k=9 exceeds n=4 for the uniform generator: every task of that
        # grid point fails, the rest of the campaign completes.
        spec = small_spec(
            families=("uniform",), sizes=((4, 3), (12, 8)), ks=(9,), replicates=1
        )
        stats = run_campaign(spec, tmp_path, workers=0)
        assert stats.executed == spec.num_tasks()
        assert stats.failed == 2  # the n=4 tasks; k=9 is feasible at n=12
        counts = CampaignStore(tmp_path).status_counts()
        assert counts == {"failed": 2, "done": 2}
        failed = [r for r in CampaignStore(tmp_path).rows() if r["status"] == "failed"]
        assert all(r["error_type"] == "HypergraphError" for r in failed)

    def test_failed_tasks_are_retried_until_exhausted(self, tmp_path):
        spec = small_spec(families=("uniform",), sizes=((4, 3),), ks=(9,), replicates=1)
        first = run_campaign(spec, tmp_path, workers=0)
        assert first.failed == spec.num_tasks()
        # The in-run retry rounds spend the whole budget on the same
        # deterministic error (3 attempts each under the default policy)...
        assert first.retried == spec.num_tasks() * 2
        latest = CampaignStore(tmp_path).latest_rows()
        assert all(row["attempt"] == 3 for row in latest.values())
        # ...so a resume skips the exhausted tasks instead of re-failing
        # them forever (the silent infinite-retry bug).
        again = run_campaign(spec, tmp_path, workers=0)
        assert again.executed == 0
        assert again.exhausted == spec.num_tasks()
        assert again.skipped == 0
        # retry=None restores the legacy semantics: every failure is
        # re-executed on every resume, with no exhaustion skip.
        legacy = run_campaign(spec, tmp_path, workers=0, retry=None)
        assert legacy.executed == spec.num_tasks()
        assert legacy.exhausted == 0
