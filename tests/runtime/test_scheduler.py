"""Scheduler tests: serial-vs-parallel byte identity, resume, failure isolation."""

from __future__ import annotations

import pytest

from repro.exceptions import CampaignError
from repro.runtime import (
    CampaignSpec,
    CampaignStore,
    campaign_digest,
    campaign_records,
    execute_task,
    run_campaign,
)

from tests.runtime.test_spec import small_spec


def digest_of(spec: CampaignSpec, directory) -> str:
    return campaign_digest(campaign_records(spec, CampaignStore(directory).rows()))


class TestSerialExecutor:
    def test_runs_every_task(self, tmp_path):
        spec = small_spec()
        stats = run_campaign(spec, tmp_path, workers=0)
        assert stats.total_tasks == spec.num_tasks()
        assert stats.executed == spec.num_tasks()
        assert stats.skipped == stats.failed == 0
        assert stats.workers == 1
        assert stats.tasks_per_s > 0
        store = CampaignStore(tmp_path)
        assert store.completed_keys() == {p["task_key"] for p in spec.task_payloads()}

    def test_rerun_skips_everything(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path, workers=0)
        again = run_campaign(spec, tmp_path, workers=0)
        assert again.executed == 0
        assert again.skipped == spec.num_tasks()
        assert again.tasks_per_s == 0.0

    def test_negative_workers_rejected(self, tmp_path):
        with pytest.raises(CampaignError):
            run_campaign(small_spec(), tmp_path, workers=-1)

    def test_non_positive_chunk_size_rejected(self, tmp_path):
        with pytest.raises(CampaignError):
            run_campaign(small_spec(), tmp_path, workers=2, chunk_size=-1)
        with pytest.raises(CampaignError):
            run_campaign(small_spec(), tmp_path, workers=2, chunk_size=0)

    def test_on_row_callback_sees_every_row(self, tmp_path):
        spec = small_spec()
        seen = []
        run_campaign(spec, tmp_path, workers=0, on_row=lambda row: seen.append(row["task_key"]))
        assert sorted(seen) == sorted(p["task_key"] for p in spec.task_payloads())


class TestParallelByteIdentity:
    def test_pool_run_matches_serial_digest(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "serial", workers=0)
        stats = run_campaign(spec, tmp_path / "pool", workers=2)
        assert stats.executed == spec.num_tasks()
        assert stats.workers == 2
        assert digest_of(spec, tmp_path / "serial") == digest_of(spec, tmp_path / "pool")

    def test_pool_rows_match_serial_rows_except_timing(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "serial", workers=0)
        run_campaign(spec, tmp_path / "pool", workers=2, chunk_size=1)
        timing = {"wall_time_s", "happy_check_wall_time_s"}
        serial = {
            r["task_key"]: {k: v for k, v in r.items() if k not in timing}
            for r in CampaignStore(tmp_path / "serial").rows()
        }
        pool = {
            r["task_key"]: {k: v for k, v in r.items() if k not in timing}
            for r in CampaignStore(tmp_path / "pool").rows()
        }
        assert serial == pool

    def test_on_row_callback_fires_in_pool_mode(self, tmp_path):
        spec = small_spec()
        seen = []
        run_campaign(
            spec, tmp_path, workers=2, on_row=lambda row: seen.append(row["task_key"])
        )
        assert len(seen) == spec.num_tasks()


class TestResume:
    def test_resume_after_kill_converges_to_same_aggregate(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "ref", workers=0)
        reference = digest_of(spec, tmp_path / "ref")

        run_campaign(spec, tmp_path / "killed", workers=0)
        store = CampaignStore(tmp_path / "killed")
        lines = store.results_path.read_text().splitlines(keepends=True)
        # Simulate a kill: drop two completed rows and leave half a line.
        store.results_path.write_text("".join(lines[:-2]) + '{"task_key": "par')
        assert len(store.completed_keys()) == spec.num_tasks() - 2

        resumed = run_campaign(spec, tmp_path / "killed", workers=0)
        assert resumed.skipped == spec.num_tasks() - 2
        assert resumed.executed == 2
        assert digest_of(spec, tmp_path / "killed") == reference

    def test_parallel_resume_matches_serial_reference(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "ref", workers=0)
        store = CampaignStore(tmp_path / "par")
        store.initialize(spec)
        # Pre-complete half the campaign out of order, then resume with a pool.
        payloads = spec.task_payloads()
        for payload in reversed(payloads[: len(payloads) // 2]):
            store.append(execute_task(payload))
        resumed = run_campaign(spec, tmp_path / "par", workers=2)
        assert resumed.skipped == len(payloads) // 2
        assert digest_of(spec, tmp_path / "par") == digest_of(spec, tmp_path / "ref")

    def test_directory_bound_to_other_campaign_rejected(self, tmp_path):
        run_campaign(small_spec(), tmp_path, workers=0)
        with pytest.raises(CampaignError, match="refusing"):
            run_campaign(small_spec(seed=99), tmp_path, workers=0)


class TestFailureIsolation:
    def test_infeasible_grid_point_fails_without_stopping_the_campaign(self, tmp_path):
        # k=9 exceeds n=4 for the uniform generator: every task of that
        # grid point fails, the rest of the campaign completes.
        spec = small_spec(
            families=("uniform",), sizes=((4, 3), (12, 8)), ks=(9,), replicates=1
        )
        stats = run_campaign(spec, tmp_path, workers=0)
        assert stats.executed == spec.num_tasks()
        assert stats.failed == 2  # the n=4 tasks; k=9 is feasible at n=12
        counts = CampaignStore(tmp_path).status_counts()
        assert counts == {"failed": 2, "done": 2}
        failed = [r for r in CampaignStore(tmp_path).rows() if r["status"] == "failed"]
        assert all(r["error_type"] == "HypergraphError" for r in failed)

    def test_failed_tasks_are_retried_on_resume(self, tmp_path):
        spec = small_spec(families=("uniform",), sizes=((4, 3),), ks=(9,), replicates=1)
        first = run_campaign(spec, tmp_path, workers=0)
        assert first.failed == spec.num_tasks()
        again = run_campaign(spec, tmp_path, workers=0)
        assert again.executed == spec.num_tasks()  # failures are not "done"
