"""Failure-path coverage for the campaign scheduler.

What happens when workers raise unexpectedly, pools are closed mid-use,
the operator hits Ctrl-C, or a task wedges: the store must survive
uncorrupted, the run must stay resumable, and the watchdog/retry layers
must convert recoverable faults into terminal rows instead of hangs.
"""

import threading
import time

import pytest

from repro.exceptions import CampaignError, TaskTimeout
from repro.runtime import (
    CampaignStore,
    RetryPolicy,
    WorkerPool,
    campaign_digest,
    campaign_records,
    execute_task,
    run_campaign,
    watchdog,
)
from repro.runtime.tasks import INSTANCE_CACHE

from tests.runtime.test_spec import small_spec


def _crash_on_capped(payload):
    """A worker bug: non-ReproError escape for half the grid (capped oracles)."""
    if payload["oracle"].startswith("capped"):
        raise RuntimeError("simulated worker bug (not a ReproError)")
    return execute_task(payload)


def _slow_build(family, n, m, k, epsilon, seed):
    time.sleep(5.0)
    raise AssertionError("the watchdog should have fired first")


def reference_digest(spec, tmp_path):
    reference = tmp_path / "reference"
    run_campaign(spec, reference, workers=0)
    return campaign_digest(campaign_records(spec, CampaignStore(reference).rows()))


class TestWatchdog:
    def test_watchdog_interrupts_a_sleeping_task(self):
        with pytest.raises(TaskTimeout, match="watchdog deadline"):
            with watchdog(0.05):
                time.sleep(5.0)

    def test_watchdog_without_deadline_is_a_noop(self):
        with watchdog(None):
            pass
        with watchdog(0):
            pass

    def test_watchdog_degrades_to_noop_off_the_main_thread(self):
        outcome = {}

        def body():
            with watchdog(0.01):
                time.sleep(0.05)
            outcome["survived"] = True

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert outcome.get("survived")

    def test_hung_task_becomes_a_timeout_row(self, tmp_path, monkeypatch):
        INSTANCE_CACHE.clear()
        monkeypatch.setattr("repro.runtime.tasks.build_instance", _slow_build)
        spec = small_spec(
            families=("uniform",), sizes=((8, 6),), ks=(3,), replicates=1,
            task_timeout_s=0.2,
        )
        start = time.perf_counter()
        stats = run_campaign(spec, tmp_path, workers=0, retry=None)
        wall = time.perf_counter() - start
        assert stats.timeouts == spec.num_tasks()
        assert stats.failed == spec.num_tasks()
        # Hard wall-clock bound: every hung task was cut at ~0.2s, not 5s.
        assert wall < 4.0
        for row in CampaignStore(tmp_path).latest_rows().values():
            assert row["status"] == "timeout"
            assert row["error_type"] == "TaskTimeout"
            assert row["task_timeout_s"] == 0.2

    def test_timeout_rows_are_retried_and_counted_as_exhausted(self, tmp_path, monkeypatch):
        INSTANCE_CACHE.clear()
        monkeypatch.setattr("repro.runtime.tasks.build_instance", _slow_build)
        spec = small_spec(
            families=("uniform",), sizes=((8, 6),), ks=(3,), replicates=1,
            oracles=("greedy-first-fit",),
        )
        stats = run_campaign(
            spec, tmp_path, workers=0, task_timeout_s=0.1,
            retry=RetryPolicy(max_attempts=2),
        )
        assert stats.timeouts == spec.num_tasks()
        assert stats.retried == spec.num_tasks()  # one in-run retry round
        resumed = run_campaign(
            spec, tmp_path, workers=0, task_timeout_s=0.1,
            retry=RetryPolicy(max_attempts=2),
        )
        assert resumed.executed == 0
        assert resumed.exhausted == spec.num_tasks()


class TestRetryRounds:
    def test_transient_failure_is_recovered_in_run(self, tmp_path, monkeypatch):
        spec = small_spec()
        digest = reference_digest(spec, tmp_path)

        def flaky(payload):
            if payload["attempt"] == 1:
                return {
                    "task_key": payload["task_key"],
                    "instance_seed": payload["instance_seed"],
                    "status": "failed",
                    "error_type": "TransientError",
                    "error": "first attempt always fails",
                    "attempt": payload["attempt"],
                }
            return execute_task(payload)

        monkeypatch.setattr("repro.runtime.scheduler.execute_task", flaky)
        stats = run_campaign(spec, tmp_path / "out", workers=0)
        assert stats.failed == 0
        assert stats.retried == spec.num_tasks()
        rows = CampaignStore(tmp_path / "out").latest_rows().values()
        assert all(row["attempt"] == 2 for row in rows)
        records = campaign_records(spec, CampaignStore(tmp_path / "out").rows())
        assert campaign_digest(records) == digest

    def test_alternating_error_signatures_reset_the_attempt_counter(
        self, tmp_path, monkeypatch
    ):
        spec = small_spec(
            families=("uniform",), sizes=((8, 6),), ks=(3,), replicates=1,
            oracles=("greedy-first-fit",),
        )
        executions = []

        def always_failing(payload):
            executions.append(payload["attempt"])
            return {
                "task_key": payload["task_key"],
                "instance_seed": payload["instance_seed"],
                "status": "failed",
                "error_type": "FlappingError",
                "error": f"different message every time #{len(executions)}",
                "attempt": payload["attempt"],
            }

        monkeypatch.setattr("repro.runtime.scheduler.execute_task", always_failing)
        stats = run_campaign(
            spec, tmp_path, workers=0, retry=RetryPolicy(max_attempts=3)
        )
        # The signature changes every execution, so the persistent attempt
        # counter keeps resetting to 1 — but the per-run execution bound
        # still caps the work at max_attempts executions per task.
        assert len(executions) == 3 * spec.num_tasks()
        assert stats.retried == 2 * spec.num_tasks()
        for row in CampaignStore(tmp_path).latest_rows().values():
            assert row["attempt"] == 1


class TestPoolFailures:
    def test_worker_bug_propagates_and_store_survives(self, tmp_path, monkeypatch):
        spec = small_spec()
        digest = reference_digest(spec, tmp_path)
        monkeypatch.setattr("repro.runtime.scheduler.execute_task", _crash_on_capped)
        out = tmp_path / "out"
        with pytest.raises(RuntimeError, match="simulated worker bug"):
            run_campaign(spec, out, workers=2, chunk_size=1)
        # Whatever rows landed before the crash are intact and parseable.
        store = CampaignStore(out)
        for row in store.rows():
            assert row["status"] == "done"
        monkeypatch.undo()
        resumed = run_campaign(spec, out, workers=0)
        assert resumed.failed == 0
        assert campaign_digest(campaign_records(spec, store.rows())) == digest

    def test_worker_bug_in_serial_executor_propagates_too(self, tmp_path, monkeypatch):
        spec = small_spec()
        monkeypatch.setattr("repro.runtime.scheduler.execute_task", _crash_on_capped)
        with pytest.raises(RuntimeError, match="simulated worker bug"):
            run_campaign(spec, tmp_path, workers=0)

    def test_closed_pool_is_refused_and_store_stays_clean(self, tmp_path):
        spec = small_spec()
        pool = WorkerPool(2)
        pool.close()
        with pytest.raises(CampaignError, match="closed"):
            run_campaign(spec, tmp_path, pool=pool)
        # Nothing ran, nothing was stored; a serial resume completes fully.
        assert CampaignStore(tmp_path).rows() == []
        stats = run_campaign(spec, tmp_path, workers=0)
        assert stats.executed == spec.num_tasks()
        assert stats.failed == 0

    def test_pool_closed_between_runs_leaves_resume_possible(self, tmp_path):
        spec = small_spec()
        with WorkerPool(2) as pool:
            first = run_campaign(spec, tmp_path, pool=pool, shard=(0, 2))
            assert first.failed == 0
        with pytest.raises(CampaignError, match="closed"):
            run_campaign(spec, tmp_path, pool=pool, shard=(1, 2))
        merged = run_campaign(spec, tmp_path, workers=0)
        assert merged.failed == 0
        assert len(CampaignStore(tmp_path).completed_keys()) == spec.num_tasks()


class TestKeyboardInterrupt:
    def test_interrupt_mid_run_leaves_store_resumable(self, tmp_path):
        spec = small_spec()
        digest = reference_digest(spec, tmp_path)
        out = tmp_path / "out"
        seen = []

        def interrupt_after_three(row):
            seen.append(row)
            if len(seen) == 3:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(spec, out, workers=0, on_row=interrupt_after_three)
        store = CampaignStore(out)
        assert len(store.rows()) == 3  # every pre-interrupt row survived
        assert store.results_path.read_text().endswith("\n")  # no torn tail
        resumed = run_campaign(spec, out, workers=0)
        assert resumed.skipped == 3
        assert resumed.executed == spec.num_tasks() - 3
        assert campaign_digest(campaign_records(spec, store.rows())) == digest
