"""Tests for CampaignSpec: JSON round trip, expansion determinism, validation."""

from __future__ import annotations

import pytest

from repro.exceptions import CampaignError
from repro.runtime import CampaignSpec, task_instance_seed, task_shard_index


def small_spec(**overrides) -> CampaignSpec:
    fields = dict(
        name="unit",
        seed=11,
        families=("colorable", "uniform"),
        sizes=((12, 8), (16, 10)),
        ks=(2,),
        oracles=("greedy-first-fit", "capped:greedy-first-fit"),
        lams=(2.0,),
        replicates=2,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestRoundTrip:
    def test_json_round_trip(self):
        spec = small_spec()
        restored = CampaignSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.digest() == spec.digest()
        assert restored.to_dict() == spec.to_dict()

    def test_defaults_survive_round_trip(self):
        spec = small_spec(replicates=1, epsilon=0.5)
        data = spec.to_dict()
        del data["replicates"], data["epsilon"]
        assert CampaignSpec.from_dict(data) == spec

    def test_digest_tracks_content(self):
        assert small_spec().digest() != small_spec(seed=12).digest()
        assert small_spec().digest() == small_spec().digest()


class TestExpansion:
    def test_num_tasks_matches_expansion(self):
        spec = small_spec()
        tasks = spec.expand()
        assert len(tasks) == spec.num_tasks() == 2 * 2 * 1 * 2 * 1 * 2

    def test_task_keys_are_unique_and_stable(self):
        spec = small_spec()
        keys = [t.task_key for t in spec.expand()]
        assert len(set(keys)) == len(keys)
        assert keys == [t.task_key for t in spec.expand()]
        assert keys[0] == (
            "family=colorable n=12 m=8 k=2 oracle=greedy-first-fit lam=2 rep=0"
        )

    def test_payloads_carry_derived_instance_seeds(self):
        spec = small_spec()
        for task, payload in zip(spec.expand(), spec.task_payloads()):
            assert payload["instance_seed"] == task_instance_seed(
                spec.seed, task.instance_key(spec.epsilon)
            )

    def test_instance_seed_depends_on_campaign_seed_and_key(self):
        key = small_spec().expand()[0].instance_key(0.5)
        assert task_instance_seed(11, key) != task_instance_seed(12, key)
        assert task_instance_seed(11, key) != task_instance_seed(11, key + "x")
        assert task_instance_seed(11, key) == task_instance_seed(11, key)

    def test_oracle_and_lam_do_not_shift_instance_seeds(self):
        # Grid points differing only in oracle/λ must share instances:
        # the instance key (hence the derived seed) excludes both axes.
        spec = small_spec(oracles=("greedy-first-fit", "greedy-min-degree"), lams=(2.0, 3.0))
        seeds_by_instance = {}
        for task, payload in zip(spec.expand(), spec.task_payloads()):
            seeds_by_instance.setdefault(task.instance_key(spec.epsilon), set()).add(
                payload["instance_seed"]
            )
        assert len(seeds_by_instance) == spec.num_tasks() // (2 * 2)
        assert all(len(seeds) == 1 for seeds in seeds_by_instance.values())

    def test_replicates_get_distinct_instance_seeds(self):
        spec = small_spec(oracles=("greedy-first-fit",), replicates=3)
        seeds = {p["instance_seed"] for p in spec.task_payloads()}
        assert len(seeds) == spec.num_tasks()


class TestSharding:
    def test_single_shard_is_the_full_expansion(self):
        spec = small_spec()
        assert spec.shard(0, 1) == spec.expand()

    def test_shards_preserve_expansion_order(self):
        spec = small_spec()
        order = {task.task_key: i for i, task in enumerate(spec.expand())}
        for index in range(3):
            positions = [order[t.task_key] for t in spec.shard(index, 3)]
            assert positions == sorted(positions)

    def test_shard_assignment_matches_task_shard_index(self):
        spec = small_spec()
        for index in range(4):
            for task in spec.shard(index, 4):
                assert task_shard_index(task.task_key, 4) == index

    @pytest.mark.parametrize(
        "index, n_shards", [(-1, 2), (2, 2), (5, 2), (0, 0), (0, -3), (True, 2), (0, True)]
    )
    def test_invalid_shard_slots_rejected(self, index, n_shards):
        with pytest.raises(CampaignError):
            small_spec().shard(index, n_shards)

    def test_task_shard_index_rejects_bad_counts(self):
        with pytest.raises(CampaignError):
            task_shard_index("some-key", 0)


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"name": ""},
            {"name": 3},
            {"seed": "seven"},
            {"families": ()},
            {"families": ("klingon",)},
            {"families": ("uniform", "uniform")},
            {"sizes": ((12,),)},
            {"sizes": ((0, 5),)},
            {"sizes": (("a", 5),)},
            {"ks": (0,)},
            {"ks": (2.5,)},
            {"oracles": ("not-an-oracle",)},
            {"oracles": ("capped:not-an-oracle",)},
            {"oracles": ("",)},
            {"lams": (0.5,)},
            {"lams": ("two",)},
            {"lams": (2, 2.0)},  # alias to the same task key after :g formatting
            {"replicates": 0},
            {"epsilon": 0.0},
            {"epsilon": 1.5},
        ],
    )
    def test_malformed_spec_rejected(self, overrides):
        with pytest.raises(CampaignError):
            small_spec(**overrides)

    def test_from_dict_missing_field_rejected(self):
        data = small_spec().to_dict()
        del data["oracles"]
        with pytest.raises(CampaignError, match="missing"):
            CampaignSpec.from_dict(data)

    def test_from_dict_unknown_field_rejected(self):
        data = small_spec().to_dict()
        data["surprise"] = 1
        with pytest.raises(CampaignError, match="unknown"):
            CampaignSpec.from_dict(data)

    def test_from_dict_non_list_axis_rejected(self):
        data = small_spec().to_dict()
        data["ks"] = 2
        with pytest.raises(CampaignError, match="list"):
            CampaignSpec.from_dict(data)

    def test_from_dict_bad_size_pair_rejected(self):
        data = small_spec().to_dict()
        data["sizes"] = [[12, 8, 3]]
        with pytest.raises(CampaignError):
            CampaignSpec.from_dict(data)

    def test_from_json_invalid_json_rejected(self):
        with pytest.raises(CampaignError, match="JSON"):
            CampaignSpec.from_json("{not json")

    def test_from_dict_non_dict_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec.from_dict([1, 2, 3])

    def test_capped_oracle_names_accepted(self):
        spec = small_spec(oracles=("capped:greedy-min-degree",))
        assert spec.oracles == ("capped:greedy-min-degree",)


class TestStoreBackendField:
    def test_default_backend_is_jsonl(self):
        assert small_spec().store == "jsonl"

    def test_unknown_backend_rejected(self):
        with pytest.raises(CampaignError, match="store"):
            small_spec(store="parquet")

    def test_backend_survives_the_round_trip(self):
        spec = small_spec(store="sqlite")
        assert CampaignSpec.from_json(spec.to_json()) == spec
        assert spec.to_dict()["store"] == "sqlite"

    def test_default_backend_is_not_serialized(self):
        # Older spec files (and their digests) predate the field: the
        # default must serialize to exactly the same JSON as before.
        assert "store" not in small_spec().to_dict()

    def test_digest_excludes_the_backend(self):
        # The backend is a storage detail, not campaign identity: the
        # same grid in JSONL and SQLite is the *same campaign*, so shard
        # stores of either backend merge and resume interchangeably.
        assert small_spec(store="sqlite").digest() == small_spec().digest()
