"""Tests for the JSONL artifact store: identity, resume, kill tolerance."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import CampaignError
from repro.runtime import CampaignSpec, CampaignStore

from tests.runtime.test_spec import small_spec


def row(key: str, status: str = "done", **extra) -> dict:
    data = {"task_key": key, "status": status}
    data.update(extra)
    return data


class TestSpecBinding:
    def test_initialize_writes_spec(self, tmp_path):
        store = CampaignStore(tmp_path / "camp")
        spec = small_spec()
        store.initialize(spec)
        assert store.spec_path.is_file()
        assert store.load_spec() == spec

    def test_initialize_idempotent_for_same_spec(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(small_spec())
        store.initialize(small_spec())  # same digest: fine

    def test_initialize_rejects_different_spec(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(small_spec())
        with pytest.raises(CampaignError, match="refusing"):
            store.initialize(small_spec(seed=99))

    def test_load_spec_without_directory_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="campaign directory"):
            CampaignStore(tmp_path / "nope").load_spec()


class TestRows:
    def test_append_and_read_round_trip(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(small_spec())
        store.append(row("a", wall_time_s=0.5))
        store.append(row("b", status="failed", error="boom"))
        rows = store.rows()
        assert [r["task_key"] for r in rows] == ["a", "b"]
        assert store.completed_keys() == {"a"}
        assert store.status_counts() == {"done": 1, "failed": 1}

    def test_append_requires_key_and_status(self, tmp_path):
        store = CampaignStore(tmp_path)
        with pytest.raises(CampaignError):
            store.append({"task_key": "a"})

    def test_retry_supersedes_failure(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a", status="failed"))
        store.append(row("a"))
        assert store.completed_keys() == {"a"}
        assert store.status_counts() == {"done": 1}

    def test_truncated_tail_line_is_skipped(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a"))
        store.append(row("b"))
        text = store.results_path.read_text()
        # Simulate a kill mid-write: the final line is half a JSON object.
        store.results_path.write_text(text[: len(text) - 10])
        assert [r["task_key"] for r in store.rows()] == ["a"]
        assert store.completed_keys() == {"a"}

    def test_append_after_truncated_tail_starts_fresh_line(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a"))
        text = store.results_path.read_text()
        store.results_path.write_text(text + '{"task_key": "partial')
        store.append(row("b"))
        assert store.completed_keys() == {"a", "b"}

    def test_garbage_and_blank_lines_are_skipped(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a"))
        with open(store.results_path, "a") as handle:
            handle.write("\n")
            handle.write("not json at all\n")
            handle.write(json.dumps(["a", "list"]) + "\n")
            handle.write(json.dumps({"no_task_key": 1}) + "\n")
        store.append(row("b"))
        assert [r["task_key"] for r in store.rows()] == ["a", "b"]

    def test_rows_empty_without_results_file(self, tmp_path):
        store = CampaignStore(tmp_path)
        assert store.rows() == []
        assert store.completed_keys() == set()
        assert store.status_counts() == {}
