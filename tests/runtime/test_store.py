"""Tests for the JSONL artifact store: identity, resume, kill tolerance, merge."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import CampaignError
from repro.runtime import (
    CampaignSpec,
    CampaignStore,
    CompactionStats,
    merge_shards,
    summaries_of,
    summarize_row,
)

from tests.runtime.test_spec import small_spec


def row(key: str, status: str = "done", **extra) -> dict:
    data = {"task_key": key, "status": status}
    data.update(extra)
    return data


class TestSpecBinding:
    def test_initialize_writes_spec(self, tmp_path):
        store = CampaignStore(tmp_path / "camp")
        spec = small_spec()
        store.initialize(spec)
        assert store.spec_path.is_file()
        assert store.load_spec() == spec

    def test_initialize_idempotent_for_same_spec(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(small_spec())
        store.initialize(small_spec())  # same digest: fine

    def test_initialize_rejects_different_spec(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(small_spec())
        with pytest.raises(CampaignError, match="refusing"):
            store.initialize(small_spec(seed=99))

    def test_load_spec_without_directory_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="campaign directory"):
            CampaignStore(tmp_path / "nope").load_spec()


class TestRows:
    def test_append_and_read_round_trip(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.initialize(small_spec())
        store.append(row("a", wall_time_s=0.5))
        store.append(row("b", status="failed", error="boom"))
        rows = store.rows()
        assert [r["task_key"] for r in rows] == ["a", "b"]
        assert store.completed_keys() == {"a"}
        assert store.status_counts() == {"done": 1, "failed": 1}

    def test_append_requires_key_and_status(self, tmp_path):
        store = CampaignStore(tmp_path)
        with pytest.raises(CampaignError):
            store.append({"task_key": "a"})

    def test_retry_supersedes_failure(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a", status="failed"))
        store.append(row("a"))
        assert store.completed_keys() == {"a"}
        assert store.status_counts() == {"done": 1}

    def test_truncated_tail_line_is_skipped(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a"))
        store.append(row("b"))
        text = store.results_path.read_text()
        # Simulate a kill mid-write: the final line is half a JSON object.
        store.results_path.write_text(text[: len(text) - 10])
        assert [r["task_key"] for r in store.rows()] == ["a"]
        assert store.completed_keys() == {"a"}

    def test_append_after_truncated_tail_starts_fresh_line(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a"))
        text = store.results_path.read_text()
        store.results_path.write_text(text + '{"task_key": "partial')
        store.append(row("b"))
        assert store.completed_keys() == {"a", "b"}

    def test_garbage_and_blank_lines_are_skipped(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a"))
        with open(store.results_path, "a") as handle:
            handle.write("\n")
            handle.write("not json at all\n")
            handle.write(json.dumps(["a", "list"]) + "\n")
            handle.write(json.dumps({"no_task_key": 1}) + "\n")
        store.append(row("b"))
        assert [r["task_key"] for r in store.rows()] == ["a", "b"]

    def test_rows_empty_without_results_file(self, tmp_path):
        store = CampaignStore(tmp_path)
        assert store.rows() == []
        assert store.completed_keys() == set()
        assert store.status_counts() == {}
        assert store.cache_counts() == {"cache_hits": 0, "cache_misses": 0}

    def test_truncated_tail_then_duplicate_key_rewrite(self, tmp_path):
        # Kill truncates a half-written row for "b"; the retry appends a
        # fresh "b" row, which must supersede nothing and glue to nothing.
        store = CampaignStore(tmp_path)
        store.append(row("a"))
        store.append(row("b", status="failed", attempt=1))
        text = store.results_path.read_text()
        store.results_path.write_text(text + '{"task_key": "b", "stat')
        store.append(row("b", attempt=2))
        assert [r["task_key"] for r in store.rows()] == ["a", "b", "b"]
        latest = store.latest_rows()
        assert latest["b"]["status"] == "done"
        assert latest["b"]["attempt"] == 2
        assert store.completed_keys() == {"a", "b"}

    def test_cache_counts_over_latest_rows(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a", instance_cache_hit=False))
        store.append(row("b", instance_cache_hit=True))
        store.append(row("c", status="failed"))  # no flag: counts nowhere
        # A rewrite of "a" flips its flag; only the latest row counts.
        store.append(row("a", instance_cache_hit=True))
        assert store.cache_counts() == {"cache_hits": 2, "cache_misses": 0}


class TestMergeShards:
    def _shard_stores(self, tmp_path, spec):
        stores = []
        for index in range(2):
            store = CampaignStore(tmp_path / f"shard{index}")
            store.initialize(spec)
            stores.append(store)
        return stores

    def test_merge_concatenates_disjoint_shards(self, tmp_path):
        spec = small_spec()
        first, second = self._shard_stores(tmp_path, spec)
        first.append(row("a"))
        second.append(row("b"))
        merged = merge_shards(tmp_path / "merged", [first.directory, second.directory])
        assert merged.load_spec().digest() == spec.digest()
        assert merged.completed_keys() == {"a", "b"}

    def test_merge_overlapping_shards_is_last_write_wins(self, tmp_path):
        spec = small_spec()
        first, second = self._shard_stores(tmp_path, spec)
        first.append(row("x", status="failed", origin="shard0"))
        first.append(row("y", origin="shard0"))
        second.append(row("x", origin="shard1"))
        merged = merge_shards(tmp_path / "merged", [first.directory, second.directory])
        latest = merged.latest_rows()
        assert latest["x"]["status"] == "done"
        assert latest["x"]["origin"] == "shard1"
        assert latest["y"]["origin"] == "shard0"
        # Argument order decides: merging the other way keeps shard0's row.
        reversed_merge = merge_shards(
            tmp_path / "merged-rev", [second.directory, first.directory]
        )
        assert reversed_merge.latest_rows()["x"]["status"] == "failed"

    def test_merge_refuses_foreign_spec_digest(self, tmp_path):
        spec = small_spec()
        foreign = small_spec(seed=99)
        mine = CampaignStore(tmp_path / "mine")
        mine.initialize(spec)
        theirs = CampaignStore(tmp_path / "theirs")
        theirs.initialize(foreign)
        with pytest.raises(CampaignError, match="foreign"):
            merge_shards(tmp_path / "merged", [mine.directory, theirs.directory])

    def test_merge_refuses_destination_among_shards(self, tmp_path):
        store = CampaignStore(tmp_path / "shard0")
        store.initialize(small_spec())
        with pytest.raises(CampaignError, match="fresh directory"):
            merge_shards(tmp_path / "shard0", [store.directory])

    def test_merge_requires_at_least_one_shard(self, tmp_path):
        with pytest.raises(CampaignError, match="at least one"):
            merge_shards(tmp_path / "merged", [])

    def test_merge_refuses_foreign_destination(self, tmp_path):
        shard = CampaignStore(tmp_path / "shard")
        shard.initialize(small_spec())
        dest = CampaignStore(tmp_path / "merged")
        dest.initialize(small_spec(seed=99))
        with pytest.raises(CampaignError, match="refusing"):
            merge_shards(tmp_path / "merged", [shard.directory])

    def test_merge_into_partial_destination_resumes(self, tmp_path):
        spec = small_spec()
        shard = CampaignStore(tmp_path / "shard")
        shard.initialize(spec)
        shard.append(row("b"))
        dest = CampaignStore(tmp_path / "merged")
        dest.initialize(spec)
        dest.append(row("a"))
        merged = merge_shards(tmp_path / "merged", [shard.directory])
        assert merged.completed_keys() == {"a", "b"}

    def test_merge_terminates_truncated_destination_tail(self, tmp_path):
        spec = small_spec()
        shard = CampaignStore(tmp_path / "shard")
        shard.initialize(spec)
        shard.append(row("b"))
        dest = CampaignStore(tmp_path / "merged")
        dest.initialize(spec)
        dest.append(row("a"))
        text = dest.results_path.read_text()
        dest.results_path.write_text(text + '{"task_key": "half')
        merged = merge_shards(tmp_path / "merged", [shard.directory])
        # The shard row starts on a fresh line, not glued to the dead tail.
        assert merged.completed_keys() == {"a", "b"}

    def test_merge_skips_truncated_shard_tails(self, tmp_path):
        spec = small_spec()
        shard = CampaignStore(tmp_path / "shard")
        shard.initialize(spec)
        shard.append(row("a"))
        text = shard.results_path.read_text()
        shard.results_path.write_text(text + '{"task_key": "half')
        merged = merge_shards(tmp_path / "merged", [shard.directory])
        assert merged.completed_keys() == {"a"}
        # The merged file itself is clean JSONL: every line parses.
        for line in merged.results_path.read_text().splitlines():
            json.loads(line)


class TestDurability:
    def test_default_is_flush_only(self, tmp_path):
        assert CampaignStore(tmp_path).durability == "flush"

    def test_unknown_durability_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="durability"):
            CampaignStore(tmp_path, durability="paranoid")

    @pytest.mark.parametrize("durability", ["flush", "fsync"])
    def test_appends_round_trip_under_both_disciplines(self, tmp_path, durability):
        store = CampaignStore(tmp_path, durability=durability)
        store.initialize(small_spec())
        store.append(row("a"))
        store.append(row("b", status="failed", error="boom"))
        assert [r["task_key"] for r in store.rows()] == ["a", "b"]
        assert store.status_counts() == {"done": 1, "failed": 1}

    def test_fsync_actually_syncs_each_append(self, tmp_path, monkeypatch):
        import os as os_module

        synced = []
        real_fsync = os_module.fsync
        monkeypatch.setattr(
            "repro.runtime.store.os.fsync",
            lambda fd: (synced.append(fd), real_fsync(fd))[1],
        )
        flush_store = CampaignStore(tmp_path / "flush")
        flush_store.initialize(small_spec())
        flush_store.append(row("a"))
        assert synced == []  # the default never pays the fsync
        fsync_store = CampaignStore(tmp_path / "fsync", durability="fsync")
        fsync_store.initialize(small_spec())
        fsync_store.append(row("a"))
        fsync_store.append(row("b"))
        assert len(synced) == 2

    def test_spec_durability_flows_through_run_campaign(self, tmp_path, monkeypatch):
        from repro.runtime import run_campaign

        synced = []
        monkeypatch.setattr("repro.runtime.store.os.fsync", synced.append)
        spec = small_spec(durability="fsync")
        stats = run_campaign(spec, tmp_path, workers=0)
        assert stats.failed == 0
        assert len(synced) == spec.num_tasks()
        # An explicit override beats the spec's default.
        more = run_campaign(spec, tmp_path / "flush", workers=0, durability="flush")
        assert more.failed == 0
        assert len(synced) == spec.num_tasks()


class TestTailCheckCache:
    """append() checks the tail once per instance, not once per row."""

    def _spy(self, monkeypatch):
        calls = []
        real = CampaignStore._needs_tail_newline

        def spy(store):
            calls.append(1)
            return real(store)

        monkeypatch.setattr(CampaignStore, "_needs_tail_newline", spy)
        return calls

    def test_repeated_appends_check_the_tail_once(self, tmp_path, monkeypatch):
        calls = self._spy(monkeypatch)
        store = CampaignStore(tmp_path)
        for index in range(5):
            store.append(row(f"t{index}"))
        assert len(calls) == 1  # only the first append pays the open+seek+read
        assert len(store.rows()) == 5

    def test_append_many_is_one_check_and_one_write(self, tmp_path, monkeypatch):
        calls = self._spy(monkeypatch)
        store = CampaignStore(tmp_path)
        store.append_many([row("a"), row("b"), row("c")])
        store.append_many([row("d")])
        assert len(calls) == 1
        assert [r["task_key"] for r in store.rows()] == ["a", "b", "c", "d"]

    def test_fresh_instance_rechecks_the_tail(self, tmp_path, monkeypatch):
        calls = self._spy(monkeypatch)
        CampaignStore(tmp_path).append(row("a"))
        CampaignStore(tmp_path).append(row("b"))
        assert len(calls) == 2  # the cache is per instance, never global state
        assert CampaignStore(tmp_path).completed_keys() == {"a", "b"}

    def test_external_truncation_invalidates_the_cache(self, tmp_path, monkeypatch):
        calls = self._spy(monkeypatch)
        store = CampaignStore(tmp_path)
        store.append(row("a"))
        store.append(row("b"))
        assert len(calls) == 1
        # A kill (simulated by external tampering) changes the file size,
        # so the next append re-checks and terminates the dead tail.
        text = store.results_path.read_text()
        store.results_path.write_text(text + '{"task_key": "partial')
        store.append(row("c"))
        assert len(calls) == 2
        assert store.completed_keys() == {"a", "b", "c"}


class TestMergeDurability:
    """merge_shards honors the spec's durability (the old code lost it)."""

    def _fsync_counter(self, monkeypatch):
        import os as os_module

        synced = []
        real_fsync = os_module.fsync
        monkeypatch.setattr(
            "repro.runtime.store.os.fsync",
            lambda fd: (synced.append(fd), real_fsync(fd))[1],
        )
        return synced

    def _shards(self, tmp_path, spec):
        dirs = []
        for index in range(2):
            shard = CampaignStore(tmp_path / f"shard{index}")
            shard.initialize(spec)
            shard.append(row(f"task-{index}"))
            dirs.append(shard.directory)
        return dirs

    def test_fsync_spec_syncs_batches_and_aggregates(self, tmp_path, monkeypatch):
        spec = small_spec(durability="fsync")
        shard_dirs = self._shards(tmp_path, spec)
        synced = self._fsync_counter(monkeypatch)
        merged = merge_shards(tmp_path / "merged", shard_dirs)
        assert merged.durability == "fsync"
        # One batched fsync per shard plus one for the aggregate sidecar —
        # not zero (the bug) and not one-per-row (the slow path).
        assert len(synced) == len(shard_dirs) + 1
        assert merged.completed_keys() == {"task-0", "task-1"}

    def test_flush_spec_never_pays_the_fsync(self, tmp_path, monkeypatch):
        shard_dirs = self._shards(tmp_path, small_spec())
        synced = self._fsync_counter(monkeypatch)
        merged = merge_shards(tmp_path / "merged", shard_dirs)
        assert merged.durability == "flush"
        assert synced == []

    def test_explicit_override_beats_the_spec(self, tmp_path, monkeypatch):
        fsync_dirs = self._shards(tmp_path / "fs", small_spec(durability="fsync"))
        flush_dirs = self._shards(tmp_path / "fl", small_spec())
        synced = self._fsync_counter(monkeypatch)
        merge_shards(tmp_path / "fs" / "merged", fsync_dirs, durability="flush")
        assert synced == []
        merge_shards(tmp_path / "fl" / "merged", flush_dirs, durability="fsync")
        assert len(synced) == 3


class TestCompaction:
    def test_compact_keeps_exactly_the_latest_row_per_key(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a", status="failed", attempt=1))
        store.append(row("b"))
        store.append(row("a", attempt=2))
        before = store.latest_rows()
        stats = store.compact()
        assert stats.rows_before == 3
        assert stats.rows_after == 2
        assert stats.rows_dropped == 1
        assert stats.bytes_after < stats.bytes_before
        # Survivors keep the file order of their final occurrence.
        assert [r["task_key"] for r in store.rows()] == ["b", "a"]
        assert store.latest_rows() == before
        assert store.latest_rows()["a"]["attempt"] == 2

    def test_compact_drops_byte_identical_duplicates(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a"))
        store.append(row("a"))
        assert store.compact().rows_dropped == 1
        assert [r["task_key"] for r in store.rows()] == ["a"]

    def test_compact_is_idempotent(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a", status="failed"))
        store.append(row("a"))
        first = store.compact()
        second = store.compact()
        assert second.rows_dropped == 0
        assert second.rows_before == first.rows_after
        assert second.bytes_after == first.bytes_after

    def test_compact_without_results_file_is_a_no_op(self, tmp_path):
        assert CampaignStore(tmp_path).compact() == CompactionStats(0, 0, 0, 0)

    def test_compact_discards_the_truncated_tail(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a"))
        store.append(row("b"))
        text = store.results_path.read_text()
        store.results_path.write_text(text + '{"task_key": "half')
        store.compact()
        # The compacted log is clean JSONL: every line parses.
        for line in store.results_path.read_text().splitlines():
            json.loads(line)
        store.append(row("c"))
        assert store.completed_keys() == {"a", "b", "c"}

    def test_compact_leaves_no_temp_file(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a"))
        store.compact()
        assert [p.name for p in tmp_path.glob("*.tmp")] == []

    def test_compact_preserves_summaries(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("x", status="failed", attempt=1))
        store.append(row("y", instance_cache_hit=True))
        store.append(row("x", attempt=2))
        before = store.summaries()
        store.compact()
        assert store.summaries() == before
        assert CampaignStore(tmp_path).summaries() == before  # sidecar refreshed


class TestIncrementalAggregates:
    def _parse_counter(self, monkeypatch):
        import repro.runtime.store as store_module

        calls = []
        real = store_module._parse_row

        def spy(raw):
            calls.append(raw)
            return real(raw)

        monkeypatch.setattr(store_module, "_parse_row", spy)
        return calls

    def test_summaries_match_the_full_row_scan(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a", instance_cache_hit=True))
        store.append(row("b", status="failed", attempt=2, error="boom"))
        store.append(row("a", instance_cache_hit=False))
        assert store.summaries() == summaries_of(store.rows())

    def test_summaries_empty_without_results_file(self, tmp_path):
        assert CampaignStore(tmp_path).summaries() == {}

    def test_second_call_scans_only_new_rows(self, tmp_path, monkeypatch):
        store = CampaignStore(tmp_path)
        store.append(row("a"))
        store.append(row("b"))
        store.summaries()  # builds the sidecar covering a and b
        calls = self._parse_counter(monkeypatch)
        assert store.summaries() == summaries_of(store.rows())
        parsed_by_summaries = len(calls) - len(store.rows())  # rows() also parses
        assert parsed_by_summaries == 0  # nothing new: pure cache read
        calls.clear()
        store.append(row("c"))
        summaries = store.summaries()
        assert summaries["c"] == summarize_row(row("c"))
        assert len(calls) == 1  # only the fresh row was parsed

    def test_sidecar_records_the_byte_cursor(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a"))
        store.summaries()
        payload = json.loads(store.aggregates_path.read_text())
        assert payload["byte_offset"] == store.results_path.stat().st_size
        assert set(payload["summaries"]) == {"a"}

    def test_garbage_sidecar_triggers_a_rebuild(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a"))
        for garbage in ("not json", '{"version": 999}', '{"version": 1, "byte_offset": -1, "summaries": {}}'):
            store.aggregates_path.write_text(garbage)
            assert store.summaries() == summaries_of(store.rows())

    def test_truncation_below_the_cursor_triggers_a_rebuild(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a"))
        store.append(row("b"))
        store.summaries()
        # Roll the log back to just row "a" (a restored backup, say): the
        # stale cursor now points past EOF and the sidecar must be rebuilt.
        first_line = store.results_path.read_text().splitlines(keepends=True)[0]
        store.results_path.write_text(first_line)
        assert set(store.summaries()) == {"a"}

    def test_rewrite_off_the_line_boundary_triggers_a_rebuild(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a"))
        store.summaries()
        # An external rewrite grows the file but the byte before the old
        # cursor is no longer a newline: the cursor does not land on a
        # line boundary, so the cache is discarded and rebuilt.
        size = store.results_path.stat().st_size
        store.results_path.write_bytes(
            b"x" * size + b"\n" + (json.dumps(row("z")) + "\n").encode()
        )
        assert set(store.summaries()) == {"z"}

    def test_unterminated_tail_is_served_but_not_cached(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a"))
        with open(store.results_path, "a") as handle:
            handle.write(json.dumps(row("b")))  # complete row, no newline yet
        summaries = store.summaries()
        assert set(summaries) == {"a", "b"}  # matches rows(): the row parses
        payload = json.loads(store.aggregates_path.read_text())
        assert set(payload["summaries"]) == {"a"}  # cursor never passes the tail
        # Once the tail is terminated by the next append, it gets cached.
        store.append(row("c"))
        store.summaries()
        payload = json.loads(store.aggregates_path.read_text())
        assert set(payload["summaries"]) == {"a", "b", "c"}

    def test_merge_combines_partials_without_rescanning(self, tmp_path, monkeypatch):
        spec = small_spec()
        shard_dirs = []
        for index in range(2):
            shard = CampaignStore(tmp_path / f"shard{index}")
            shard.initialize(spec)
            shard.append(row(f"t{index}", instance_cache_hit=bool(index)))
            shard.summaries()  # each shard lands with its partial built
            shard_dirs.append(shard.directory)
        merged = merge_shards(tmp_path / "merged", shard_dirs)
        calls = self._parse_counter(monkeypatch)
        combined = merged.summaries()
        assert calls == []  # the merge combined shard partials: no row scan
        assert combined == summaries_of(merged.rows())

    def test_merge_overlap_resolves_like_the_row_log(self, tmp_path):
        spec = small_spec()
        first = CampaignStore(tmp_path / "s0")
        first.initialize(spec)
        first.append(row("x", status="failed", attempt=1))
        second = CampaignStore(tmp_path / "s1")
        second.initialize(spec)
        second.append(row("x", attempt=2))
        merged = merge_shards(tmp_path / "merged", [first.directory, second.directory])
        assert merged.summaries() == summaries_of(merged.rows())
        assert merged.summaries()["x"]["status"] == "done"


class TestRetryExhaustion:
    def test_exhausted_keys_need_retryable_status_and_budget(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("done-task"))
        store.append(row("fresh-failure", status="failed", attempt=1))
        store.append(row("spent-failure", status="failed", attempt=3))
        store.append(row("spent-timeout", status="timeout", attempt=4))
        store.append(row("legacy-failure", status="failed"))  # no attempt field
        assert store.retry_exhausted_keys(3) == {"spent-failure", "spent-timeout"}
        assert store.retry_exhausted_keys(1) == {
            "fresh-failure",
            "spent-failure",
            "spent-timeout",
            "legacy-failure",
        }

    def test_exhaustion_considers_only_the_latest_row(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append(row("a", status="failed", attempt=3))
        store.append(row("a"))  # later success supersedes the exhaustion
        assert store.retry_exhausted_keys(3) == set()

    def test_max_attempts_must_be_positive(self, tmp_path):
        with pytest.raises(CampaignError, match="max_attempts"):
            CampaignStore(tmp_path).retry_exhausted_keys(0)
