"""Tests for the SQLite campaign store and the open_store backend dispatch.

The SQLite backend must be behaviorally indistinguishable from the JSONL
store behind the shared :class:`~repro.runtime.store.BaseCampaignStore`
surface: the parity tests here drive both backends with the same row
sequences and assert every query view agrees, and the kill-simulation
tests exercise the resume path the chaos harness leans on (deleting the
tail of the ``results`` table stands in for rows lost to a crash between
transactions, exactly like truncating ``results.jsonl``).
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.exceptions import CampaignError
from repro.runtime import (
    CampaignStore,
    CompactionStats,
    SQLiteCampaignStore,
    campaign_digest,
    detect_backend,
    merge_shards,
    open_store,
    records_from_summaries,
    run_campaign,
    summaries_of,
)

from tests.runtime.test_spec import small_spec


def row(key: str, status: str = "done", **extra) -> dict:
    data = {"task_key": key, "status": status}
    data.update(extra)
    return data


#: One row sequence covering retries, duplicates, cache flags and statuses.
PARITY_ROWS = [
    row("a", status="failed", attempt=1, error="boom"),
    row("b", instance_cache_hit=True),
    row("c", status="timeout", attempt=4),
    row("a", attempt=2, instance_cache_hit=False),
    row("d", status="failed"),  # no attempt field (legacy row)
    row("b", instance_cache_hit=True),  # byte-identical duplicate
]


class TestBackendParity:
    """Same rows in, same answers out — for every query view."""

    def _both(self, tmp_path):
        jsonl = CampaignStore(tmp_path / "jsonl")
        sqlite = SQLiteCampaignStore(tmp_path / "sqlite")
        for store in (jsonl, sqlite):
            for entry in PARITY_ROWS:
                store.append(entry)
        return jsonl, sqlite

    def test_rows_and_latest_rows_agree(self, tmp_path):
        jsonl, sqlite = self._both(tmp_path)
        assert sqlite.rows() == jsonl.rows()
        assert sqlite.latest_rows() == jsonl.latest_rows()

    def test_query_views_agree(self, tmp_path):
        jsonl, sqlite = self._both(tmp_path)
        assert sqlite.completed_keys() == jsonl.completed_keys()
        assert sqlite.status_counts() == jsonl.status_counts()
        assert sqlite.cache_counts() == jsonl.cache_counts()
        for budget in (1, 2, 3, 4):
            assert sqlite.retry_exhausted_keys(budget) == jsonl.retry_exhausted_keys(
                budget
            ), f"retry_exhausted_keys({budget}) diverged between backends"

    def test_summaries_agree(self, tmp_path):
        jsonl, sqlite = self._both(tmp_path)
        assert sqlite.summaries() == jsonl.summaries()
        assert sqlite.summaries() == summaries_of(sqlite.rows())

    def test_append_many_matches_appends(self, tmp_path):
        one_by_one = SQLiteCampaignStore(tmp_path / "single")
        batched = SQLiteCampaignStore(tmp_path / "batch")
        for entry in PARITY_ROWS:
            one_by_one.append(entry)
        batched.append_many(PARITY_ROWS)
        assert batched.rows() == one_by_one.rows()
        batched.append_many([])  # empty batch is a no-op, not an error
        assert len(batched.rows()) == len(PARITY_ROWS)


class TestSQLiteBasics:
    def test_round_trip_preserves_payload_fields(self, tmp_path):
        store = SQLiteCampaignStore(tmp_path)
        store.initialize(small_spec())
        store.append(row("a", wall_time_s=0.5, result={"color_bound": 3}))
        (restored,) = store.rows()
        assert restored == row("a", wall_time_s=0.5, result={"color_bound": 3})

    def test_append_requires_key_and_status(self, tmp_path):
        with pytest.raises(CampaignError):
            SQLiteCampaignStore(tmp_path).append({"task_key": "a"})

    def test_empty_directory_answers_like_an_empty_store(self, tmp_path):
        store = SQLiteCampaignStore(tmp_path)
        assert store.rows() == []
        assert store.latest_rows() == {}
        assert store.completed_keys() == set()
        assert store.status_counts() == {}
        assert store.cache_counts() == {"cache_hits": 0, "cache_misses": 0}
        assert store.retry_exhausted_keys(3) == set()
        assert store.summaries() == {}
        assert not store.results_path.exists()  # queries never create the db

    def test_max_attempts_must_be_positive(self, tmp_path):
        with pytest.raises(CampaignError, match="max_attempts"):
            SQLiteCampaignStore(tmp_path).retry_exhausted_keys(0)

    def test_spec_binding_matches_jsonl_semantics(self, tmp_path):
        store = SQLiteCampaignStore(tmp_path)
        store.initialize(small_spec())
        store.initialize(small_spec())  # same digest: fine
        with pytest.raises(CampaignError, match="refusing"):
            store.initialize(small_spec(seed=99))

    def test_close_releases_and_reopens(self, tmp_path):
        store = SQLiteCampaignStore(tmp_path)
        store.append(row("a"))
        store.close()
        store.close()  # idempotent
        store.append(row("b"))
        assert store.completed_keys() == {"a", "b"}

    @pytest.mark.parametrize(
        "durability, synchronous", [("flush", 0), ("fsync", 2)]
    )
    def test_durability_maps_to_pragma_synchronous(
        self, tmp_path, durability, synchronous
    ):
        store = SQLiteCampaignStore(tmp_path, durability=durability)
        store.append(row("a"))
        (level,) = store._connect().execute("PRAGMA synchronous").fetchone()
        assert level == synchronous

    def test_unknown_durability_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="durability"):
            SQLiteCampaignStore(tmp_path, durability="paranoid")


class TestSQLiteKillResume:
    def _kill_tail(self, store: SQLiteCampaignStore, survivors: int) -> None:
        """Simulate a crash: drop every row after the first ``survivors``."""
        conn = store._connect()
        with conn:
            conn.execute(
                "DELETE FROM results WHERE id > "
                "(SELECT COALESCE(MAX(id), 0) FROM (SELECT id FROM results ORDER BY id LIMIT ?))",
                (survivors,),
            )

    def test_killed_run_resumes_to_the_serial_digest(self, tmp_path):
        spec = small_spec(store="sqlite")
        reference = run_campaign(spec, tmp_path / "ref", workers=0)
        assert reference.failed == 0
        ref_store = open_store(tmp_path / "ref")
        ref_digest = campaign_digest(
            records_from_summaries(spec, ref_store.summaries())
        )

        run_campaign(spec, tmp_path / "killed", workers=0)
        killed = open_store(tmp_path / "killed")
        assert isinstance(killed, SQLiteCampaignStore)
        killed.summaries()  # advance the aggregate cursor past the full run
        self._kill_tail(killed, survivors=3)
        killed.close()
        resumed = run_campaign(spec, tmp_path / "killed", workers=0)
        assert resumed.skipped == 3
        assert resumed.executed == spec.num_tasks() - 3
        resumed_store = open_store(tmp_path / "killed")
        digest = campaign_digest(
            records_from_summaries(spec, resumed_store.summaries())
        )
        assert digest == ref_digest

    def test_cursor_past_max_id_rebuilds_the_aggregate(self, tmp_path):
        store = SQLiteCampaignStore(tmp_path)
        store.append_many([row("a"), row("b"), row("c")])
        store.summaries()  # cursor = 3
        self._kill_tail(store, survivors=1)
        # The stale aggregate still holds b and c; the rebuild drops them.
        assert set(store.summaries()) == {"a"}
        assert store.summaries() == summaries_of(store.rows())

    def test_summaries_scan_only_new_rows(self, tmp_path):
        store = SQLiteCampaignStore(tmp_path)
        store.append(row("a", status="failed", attempt=1))
        store.summaries()
        store.append(row("a", attempt=2))
        store.append(row("b"))
        summaries = store.summaries()
        assert summaries == summaries_of(store.rows())
        assert summaries["a"]["status"] == "done"
        conn = store._connect()
        (cursor,) = conn.execute(
            "SELECT value FROM meta WHERE key = 'aggregate_cursor'"
        ).fetchone()
        (max_id,) = conn.execute("SELECT MAX(id) FROM results").fetchone()
        assert int(cursor) == max_id


class TestSQLiteCompaction:
    def test_compact_keeps_the_latest_row_per_key(self, tmp_path):
        store = SQLiteCampaignStore(tmp_path)
        for entry in PARITY_ROWS:
            store.append(entry)
        before = store.latest_rows()
        stats = store.compact()
        assert stats.rows_before == len(PARITY_ROWS)
        assert stats.rows_after == len(before)
        assert store.latest_rows() == before
        assert store.compact().rows_dropped == 0  # idempotent

    def test_compact_without_database_is_a_no_op(self, tmp_path):
        assert SQLiteCampaignStore(tmp_path).compact() == CompactionStats(0, 0, 0, 0)

    def test_compact_preserves_summaries(self, tmp_path):
        store = SQLiteCampaignStore(tmp_path)
        for entry in PARITY_ROWS:
            store.append(entry)
        before = store.summaries()
        store.compact()
        assert store.summaries() == before


class TestOpenStore:
    def test_fresh_directory_uses_the_default_backend(self, tmp_path):
        assert isinstance(open_store(tmp_path / "a"), CampaignStore)
        assert isinstance(
            open_store(tmp_path / "b", default_backend="sqlite"), SQLiteCampaignStore
        )

    def test_existing_results_file_wins(self, tmp_path):
        CampaignStore(tmp_path / "jl").append(row("a"))
        SQLiteCampaignStore(tmp_path / "sq").append(row("a"))
        assert detect_backend(tmp_path / "jl") == "jsonl"
        assert detect_backend(tmp_path / "sq") == "sqlite"
        # default_backend is only a fallback: the data decides.
        assert isinstance(
            open_store(tmp_path / "jl", default_backend="sqlite"), CampaignStore
        )
        assert isinstance(
            open_store(tmp_path / "sq", default_backend="jsonl"), SQLiteCampaignStore
        )

    def test_bound_spec_names_its_backend(self, tmp_path):
        store = SQLiteCampaignStore(tmp_path)
        store.initialize(small_spec(store="sqlite"))
        assert detect_backend(tmp_path) == "sqlite"
        assert isinstance(open_store(tmp_path), SQLiteCampaignStore)

    def test_fresh_directory_detects_nothing(self, tmp_path):
        assert detect_backend(tmp_path) is None

    def test_explicit_backend_conflicting_with_data_is_refused(self, tmp_path):
        CampaignStore(tmp_path / "jl").append(row("a"))
        SQLiteCampaignStore(tmp_path / "sq").append(row("a"))
        with pytest.raises(CampaignError, match="already holds jsonl"):
            open_store(tmp_path / "jl", backend="sqlite")
        with pytest.raises(CampaignError, match="already holds sqlite"):
            open_store(tmp_path / "sq", backend="jsonl")
        # Matching the data is fine, as is overriding a rowless spec.
        assert isinstance(open_store(tmp_path / "jl", backend="jsonl"), CampaignStore)
        bound = CampaignStore(tmp_path / "bound")
        bound.initialize(small_spec())
        assert isinstance(
            open_store(tmp_path / "bound", backend="sqlite"), SQLiteCampaignStore
        )

    def test_unknown_backend_names_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="backend"):
            open_store(tmp_path, backend="parquet")
        with pytest.raises(CampaignError, match="backend"):
            open_store(tmp_path, default_backend="parquet")


class TestSQLiteCampaignRuns:
    def test_spec_store_field_drives_run_campaign(self, tmp_path):
        spec = small_spec(store="sqlite")
        stats = run_campaign(spec, tmp_path, workers=0)
        assert stats.failed == 0
        assert (tmp_path / "results.sqlite").exists()
        assert not (tmp_path / "results.jsonl").exists()

    def test_backend_override_beats_the_spec_default(self, tmp_path):
        stats = run_campaign(small_spec(), tmp_path, workers=0, backend="sqlite")
        assert stats.failed == 0
        assert (tmp_path / "results.sqlite").exists()

    def test_both_backends_produce_the_same_digest(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "jl", workers=0)
        run_campaign(spec, tmp_path / "sq", workers=0, backend="sqlite")
        jl = open_store(tmp_path / "jl")
        sq = open_store(tmp_path / "sq")
        digest_jl = campaign_digest(records_from_summaries(spec, jl.summaries()))
        digest_sq = campaign_digest(records_from_summaries(spec, sq.summaries()))
        assert digest_jl == digest_sq

    def test_merge_fuses_mixed_backend_shards(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "shard0", shard=(0, 2))
        run_campaign(spec, tmp_path / "shard1", shard=(1, 2), backend="sqlite")
        run_campaign(spec, tmp_path / "serial", workers=0)
        merged = merge_shards(
            tmp_path / "merged", [tmp_path / "shard0", tmp_path / "shard1"]
        )
        serial = open_store(tmp_path / "serial")
        assert merged.completed_keys() == serial.completed_keys()
        assert campaign_digest(
            records_from_summaries(spec, merged.summaries())
        ) == campaign_digest(records_from_summaries(spec, serial.summaries()))

    def test_sqlite_destination_follows_the_spec(self, tmp_path):
        spec = small_spec(store="sqlite")
        run_campaign(spec, tmp_path / "shard0", shard=(0, 2))
        run_campaign(spec, tmp_path / "shard1", shard=(1, 2))
        merged = merge_shards(
            tmp_path / "merged", [tmp_path / "shard0", tmp_path / "shard1"]
        )
        assert isinstance(merged, SQLiteCampaignStore)
        assert merged.completed_keys() == {
            task.task_key for task in spec.expand()
        }

    def test_sqlite_payloads_are_canonical_json(self, tmp_path):
        # The payload column stores sort_keys JSON, so dumping a row back
        # out is byte-identical to what the JSONL backend would write.
        store = SQLiteCampaignStore(tmp_path)
        original = row("a", z_field=1, a_field=2)
        store.append(original)
        conn = sqlite3.connect(str(store.results_path))
        (payload,) = conn.execute("SELECT payload FROM results").fetchone()
        conn.close()
        assert payload == json.dumps(original, sort_keys=True)
