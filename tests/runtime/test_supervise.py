"""Tests for the shard coordinator and its executors.

Most tests drive :class:`ShardCoordinator` through a scripted executor
(instant, failure shapes on demand); a small integration tail exercises
the real :class:`LocalProcessExecutor` subprocess path.
"""

from typing import Dict, List, Optional

import pytest

from repro.exceptions import CampaignError, SupervisionError
from repro.runtime import (
    CampaignStore,
    InlineExecutor,
    LocalProcessExecutor,
    RetryPolicy,
    ShardCoordinator,
    ShardExecutor,
    ShardHandle,
    ShardLaunch,
    campaign_digest,
    campaign_records,
    run_campaign,
)
from repro.runtime.faults import KILL_EXIT_CODE

from tests.runtime.test_spec import small_spec


def serial_digest(spec, tmp_path):
    """Digest of the serial reference run (the supervision oracle)."""
    reference = tmp_path / "serial-reference"
    run_campaign(spec, reference, workers=0)
    return campaign_digest(campaign_records(spec, CampaignStore(reference).rows()))


class _ScriptedHandle(ShardHandle):
    def __init__(self, code: Optional[int]) -> None:
        self.code = code
        self.killed = False

    def poll(self) -> Optional[int]:
        return self.code

    def kill(self) -> None:
        self.killed = True


class ScriptedExecutor(ShardExecutor):
    """Play back a per-shard list of behaviors, one per dispatch.

    ``"land"`` delegates to the real :class:`InlineExecutor` (the shard
    actually runs), ``"crash"`` reports an instant kill exit without doing
    any work, ``"hang"`` never exits and never heartbeats (the coordinator
    must stale-kill it).  Dispatches beyond the script land.
    """

    def __init__(self, script: Dict[int, List[str]]) -> None:
        self.script = {index: list(actions) for index, actions in script.items()}
        self.launches: List[ShardLaunch] = []
        self.handles: List[_ScriptedHandle] = []
        self._inline = InlineExecutor()

    def launch(self, launch: ShardLaunch) -> ShardHandle:
        self.launches.append(launch)
        actions = self.script.get(launch.index)
        action = actions.pop(0) if actions else "land"
        if action == "land":
            return self._inline.launch(launch)
        handle = _ScriptedHandle(KILL_EXIT_CODE if action == "crash" else None)
        self.handles.append(handle)
        return handle


def coordinator(spec, tmp_path, executor, **overrides):
    defaults = dict(
        n_shards=2,
        heartbeat_timeout_s=0.05,
        max_restarts=3,
        base_backoff_s=0.0,
        poll_interval_s=0.005,
    )
    defaults.update(overrides)
    return ShardCoordinator(spec, tmp_path / "out", executor, **defaults)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_shards": 0},
            {"heartbeat_timeout_s": 0},
            {"max_restarts": -1},
            {"base_backoff_s": -1.0},
            {"backoff": 0.5},
            {"jitter": 2.0},
            {"poll_interval_s": 0},
            {"max_wall_clock_s": 0},
        ],
    )
    def test_bad_shapes_are_refused(self, tmp_path, kwargs):
        with pytest.raises(CampaignError):
            coordinator(small_spec(), tmp_path, ScriptedExecutor({}), **kwargs)

    def test_chaos_requires_the_env_gate(self, tmp_path, monkeypatch):
        from repro.runtime.faults import CHAOS_ENV_VAR, FaultPlan

        monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
        with pytest.raises(CampaignError, match=CHAOS_ENV_VAR):
            coordinator(
                small_spec(), tmp_path, ScriptedExecutor({}), chaos=FaultPlan(p_fail=0.1)
            )


class TestHappyPath:
    def test_all_shards_land_and_digest_matches_serial(self, tmp_path):
        spec = small_spec()
        report = coordinator(spec, tmp_path, ScriptedExecutor({})).run()
        assert [shard.status for shard in report.shards] == ["landed", "landed"]
        assert report.restarts == 0 and report.poisoned == []
        assert report.ok
        assert report.status_counts == {"done": spec.num_tasks()}
        assert report.digest == serial_digest(spec, tmp_path)

    def test_expected_digest_is_enforced(self, tmp_path):
        spec = small_spec()
        with pytest.raises(SupervisionError, match="serial reference"):
            coordinator(
                spec, tmp_path, ScriptedExecutor({}), expected_digest="0" * 64
            ).run()

    def test_matching_expected_digest_passes(self, tmp_path):
        spec = small_spec()
        report = coordinator(
            spec,
            tmp_path,
            ScriptedExecutor({}),
            expected_digest=serial_digest(spec, tmp_path),
        ).run()
        assert report.ok


class TestCrashRecovery:
    def test_crashed_shard_is_redispatched_and_lands(self, tmp_path):
        spec = small_spec()
        executor = ScriptedExecutor({0: ["crash", "land"]})
        report = coordinator(spec, tmp_path, executor).run()
        shard0 = report.shards[0]
        assert shard0.status == "landed"
        assert shard0.dispatches == 2 and shard0.restarts == 1
        assert shard0.exit_codes == [KILL_EXIT_CODE, 0]
        assert report.digest == serial_digest(spec, tmp_path)

    def test_redispatch_salt_tracks_the_dispatch_count(self, tmp_path, monkeypatch):
        from repro.runtime.faults import CHAOS_ENV_VAR, FaultPlan

        monkeypatch.setenv(CHAOS_ENV_VAR, "1")
        spec = small_spec()
        executor = ScriptedExecutor({1: ["crash", "crash", "land"]})
        # max_salt=0: the plan never actually fires, we only inspect salts.
        coordinator(
            spec, tmp_path, executor, chaos=FaultPlan(p_kill=0.5, max_salt=0)
        ).run()
        salts = [
            launch.chaos.salt for launch in executor.launches if launch.index == 1
        ]
        assert salts == [0, 1, 2]

    def test_shard_is_poisoned_after_max_restarts(self, tmp_path):
        spec = small_spec()
        executor = ScriptedExecutor({0: ["crash", "crash"]})
        report = coordinator(spec, tmp_path, executor, max_restarts=1).run()
        shard0 = report.shards[0]
        assert shard0.status == "poisoned"
        assert shard0.dispatches == 2  # 1 dispatch + max_restarts re-dispatches
        assert report.poisoned == [0]
        assert not report.ok
        # The healthy shard still landed and was merged.
        assert report.shards[1].status == "landed"
        assert report.status_counts.get("done", 0) > 0

    def test_poisoned_shard_rows_are_salvaged(self, tmp_path):
        spec = small_spec()
        # A shard that stored all of its rows but keeps crashing at exit:
        # run shard 0 by hand into the coordinator's shard directory, then
        # script nothing but crashes for its dispatches.
        executor = ScriptedExecutor({0: ["crash", "crash", "crash"]})
        coord = coordinator(spec, tmp_path, executor, max_restarts=2)
        run_campaign(spec, coord.shard_dir(0), workers=0, shard=(0, 2))
        report = coord.run()
        assert report.shards[0].status == "poisoned"
        # Every row the doomed shard managed to store was still merged, so
        # the overall digest matches the serial reference.
        assert report.status_counts == {"done": spec.num_tasks()}
        assert report.digest == serial_digest(spec, tmp_path)

    def test_backoff_delays_grow_exponentially(self, tmp_path):
        coord = coordinator(
            small_spec(),
            tmp_path,
            ScriptedExecutor({}),
            base_backoff_s=0.1,
            backoff=2.0,
            jitter=0.5,
            rng_seed=42,
        )
        delays = [coord._backoff_delay(r) for r in (1, 2, 3)]
        for restart, delay in enumerate(delays, start=1):
            base = 0.1 * 2.0 ** (restart - 1)
            assert base <= delay <= base * 1.5
        # Seeded jitter: same seed, same delays.
        again = coordinator(
            small_spec(),
            tmp_path,
            ScriptedExecutor({}),
            base_backoff_s=0.1,
            backoff=2.0,
            jitter=0.5,
            rng_seed=42,
        )
        assert [again._backoff_delay(r) for r in (1, 2, 3)] == delays


class TestHeartbeat:
    def test_stale_heartbeat_triggers_kill_and_redispatch(self, tmp_path):
        spec = small_spec()
        executor = ScriptedExecutor({0: ["hang", "land"]})
        report = coordinator(spec, tmp_path, executor).run()
        shard0 = report.shards[0]
        assert shard0.status == "landed"
        assert shard0.stale_kills == 1
        assert shard0.exit_codes == [None, 0]  # never exited on its own
        assert executor.handles[0].killed
        assert report.digest == serial_digest(spec, tmp_path)

    def test_wall_clock_bound_kills_stuck_workers(self, tmp_path):
        spec = small_spec()
        executor = ScriptedExecutor({0: ["hang"] * 50, 1: ["hang"] * 50})
        coord = coordinator(
            spec,
            tmp_path,
            executor,
            heartbeat_timeout_s=60.0,  # staleness never trips first
            max_wall_clock_s=0.1,
        )
        with pytest.raises(SupervisionError, match="wall-clock"):
            coord.run()
        assert all(handle.killed for handle in executor.handles)


class TestFailedShards:
    def failing_spec(self):
        # k=9 exceeds n=4 for the uniform generator: one grid point always
        # fails, so every shard exits 1 (completed with failed rows).
        return small_spec(
            families=("uniform",), sizes=((4, 3), (12, 8)), ks=(9,), replicates=2
        )

    def test_exit_one_lands_with_failures_by_default(self, tmp_path):
        spec = self.failing_spec()
        report = coordinator(spec, tmp_path, ScriptedExecutor({})).run()
        statuses = {shard.status for shard in report.shards}
        assert "landed-with-failures" in statuses
        assert report.restarts == 0
        assert not report.ok
        assert report.status_counts.get("failed", 0) > 0

    def test_restart_failed_shards_retries_then_poisons(self, tmp_path):
        spec = self.failing_spec()
        report = coordinator(
            spec,
            tmp_path,
            ScriptedExecutor({}),
            restart_failed_shards=True,
            max_restarts=1,
            retry=RetryPolicy(max_attempts=1),
        ).run()
        # The genuinely-infeasible grid point fails on every dispatch, so
        # the shards holding it burn their restart budget and are poisoned
        # — but their completed rows are salvaged.
        assert any(shard.status == "poisoned" for shard in report.shards)
        assert report.poisoned
        assert report.status_counts.get("done", 0) > 0


class TestLocalProcessExecutor:
    def test_command_encodes_the_launch(self, tmp_path):
        from repro.runtime.faults import FaultPlan

        executor = LocalProcessExecutor(python="pythonX")
        launch = ShardLaunch(
            spec_path=tmp_path / "spec.json",
            shard_dir=tmp_path / "shard-0",
            index=0,
            n_shards=4,
            heartbeat_path=tmp_path / "shard-0" / "heartbeat",
            task_timeout_s=2.5,
            retry=RetryPolicy(max_attempts=5, base_delay_s=0.25),
            durability="fsync",
            chaos=FaultPlan(p_kill=0.1, seed=3, salt=1),
        )
        argv = executor.command(launch)
        assert argv[:5] == ["pythonX", "-m", "repro", "campaign", "run"]
        text = " ".join(argv)
        assert "--shard 0/4" in text
        assert "--workers 0" in text
        assert "--task-timeout 2.5" in text
        assert "--max-retries 5" in text
        assert "--retry-base-delay 0.25" in text
        assert "--durability fsync" in text
        assert "--chaos 0.1,0,0" in text
        assert "--chaos-salt 1" in text

    def test_minimal_command_omits_optional_flags(self, tmp_path):
        executor = LocalProcessExecutor()
        launch = ShardLaunch(
            spec_path=tmp_path / "spec.json",
            shard_dir=tmp_path / "shard-0",
            index=1,
            n_shards=2,
            heartbeat_path=tmp_path / "hb",
            retry=None,
        )
        text = " ".join(executor.command(launch))
        assert "--task-timeout" not in text
        assert "--max-retries 0" in text  # retry=None must disable the CLI default
        assert "--durability" not in text
        assert "--chaos" not in text

    def test_subprocess_shards_land_and_match_serial(self, tmp_path):
        spec = small_spec()
        report = coordinator(
            spec,
            tmp_path,
            LocalProcessExecutor(),
            heartbeat_timeout_s=60.0,
            max_wall_clock_s=120.0,
        ).run()
        assert [shard.status for shard in report.shards] == ["landed", "landed"]
        assert report.ok
        assert report.digest == serial_digest(spec, tmp_path)
        # The workers logged to their shard directories.
        out_dir = tmp_path / "out"
        for index in range(2):
            log = out_dir / "shards" / f"shard-{index}" / "worker.log"
            assert log.exists() and "aggregate digest" in log.read_text()
