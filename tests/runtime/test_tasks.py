"""Task-execution tests: purity, instance digests, oracle resolution."""

from __future__ import annotations

import pytest

from repro.core.reduction import ConflictFreeMulticoloringViaMaxIS
from repro.exceptions import CampaignError
from repro.hypergraph.io import reduction_result_from_dict
from repro.maxis import MaxISApproximator
from repro.runtime import (
    FAMILIES,
    build_instance,
    execute_task,
    instance_digest,
    resolve_oracle,
)

from tests.runtime.test_spec import small_spec


class TestBuildInstance:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_families_build_and_are_seed_deterministic(self, family):
        first = build_instance(family, n=14, m=8, k=2, epsilon=0.5, seed=42)
        second = build_instance(family, n=14, m=8, k=2, epsilon=0.5, seed=42)
        assert instance_digest(first) == instance_digest(second)
        other = build_instance(family, n=14, m=8, k=2, epsilon=0.5, seed=43)
        assert instance_digest(first) != instance_digest(other)

    def test_unknown_family_rejected(self):
        with pytest.raises(CampaignError):
            build_instance("klingon", n=5, m=2, k=1, epsilon=0.5, seed=0)


class TestResolveOracle:
    def test_registry_name_resolves(self):
        oracle = resolve_oracle("greedy-first-fit", lam=2.0)
        assert isinstance(oracle, MaxISApproximator)
        assert oracle.name == "greedy-first-fit"

    def test_capped_prefix_wraps_with_task_lambda(self):
        oracle = resolve_oracle("capped:greedy-first-fit", lam=3.0)
        assert isinstance(oracle, MaxISApproximator)
        assert "1/3" in oracle.name


class TestExecuteTask:
    def test_row_is_pure_except_timing(self):
        payload = small_spec().task_payloads()[0]
        timing = {"wall_time_s", "happy_check_wall_time_s"}
        first = {k: v for k, v in execute_task(payload).items() if k not in timing}
        second = {k: v for k, v in execute_task(payload).items() if k not in timing}
        assert first == second

    def test_done_row_matches_direct_reduction(self):
        payload = small_spec().task_payloads()[0]
        row = execute_task(payload)
        assert row["status"] == "done"
        assert row["task_key"] == payload["task_key"]
        hypergraph = build_instance(
            payload["family"],
            n=payload["n"],
            m=payload["m"],
            k=payload["k"],
            epsilon=payload["epsilon"],
            seed=payload["instance_seed"],
        )
        assert row["instance_digest"] == instance_digest(hypergraph)
        assert row["peak_triples"] == payload["k"] * hypergraph.total_edge_size()
        reduction = ConflictFreeMulticoloringViaMaxIS(
            k=payload["k"],
            approximator=resolve_oracle(payload["oracle"], payload["lam"]),
            lam=payload["lam"],
        )
        expected = reduction.run(hypergraph)
        restored = reduction_result_from_dict(row["result"])
        assert restored.multicoloring == expected.multicoloring
        assert restored.phases == expected.phases
        assert row["wall_time_s"] >= 0

    def test_infeasible_payload_yields_failed_row(self):
        payload = small_spec().task_payloads()[0]
        payload = dict(payload, family="uniform", k=payload["n"] + 1)
        row = execute_task(payload)
        assert row["status"] == "failed"
        assert row["error_type"] == "HypergraphError"
        assert "result" not in row
        assert row["wall_time_s"] >= 0
