"""Task-execution tests: purity, instance digests, oracle resolution."""

from __future__ import annotations

import pytest

from repro.core.reduction import ConflictFreeMulticoloringViaMaxIS
from repro.exceptions import CampaignError
from repro.hypergraph.io import reduction_result_from_dict
from repro.maxis import MaxISApproximator
from repro.runtime import (
    FAMILIES,
    INSTANCE_CACHE,
    InstanceCache,
    build_instance,
    execute_task,
    instance_digest,
    instance_key,
    resolve_oracle,
)

from tests.runtime.test_spec import small_spec

#: Row fields that legitimately vary between reruns of the same payload:
#: wall times and the execution-order-dependent instance-cache flag.
NONDETERMINISTIC_ROW_FIELDS = {
    "wall_time_s",
    "happy_check_wall_time_s",
    "instance_cache_hit",
}


class TestBuildInstance:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_families_build_and_are_seed_deterministic(self, family):
        first = build_instance(family, n=14, m=8, k=2, epsilon=0.5, seed=42)
        second = build_instance(family, n=14, m=8, k=2, epsilon=0.5, seed=42)
        assert instance_digest(first) == instance_digest(second)
        other = build_instance(family, n=14, m=8, k=2, epsilon=0.5, seed=43)
        assert instance_digest(first) != instance_digest(other)

    def test_unknown_family_rejected(self):
        with pytest.raises(CampaignError):
            build_instance("klingon", n=5, m=2, k=1, epsilon=0.5, seed=0)


class TestResolveOracle:
    def test_registry_name_resolves(self):
        oracle = resolve_oracle("greedy-first-fit", lam=2.0)
        assert isinstance(oracle, MaxISApproximator)
        assert oracle.name == "greedy-first-fit"

    def test_capped_prefix_wraps_with_task_lambda(self):
        oracle = resolve_oracle("capped:greedy-first-fit", lam=3.0)
        assert isinstance(oracle, MaxISApproximator)
        assert "1/3" in oracle.name


class TestInstanceKey:
    def test_oracle_free_coordinates_only(self):
        key = instance_key("colorable", n=12, m=8, k=2, epsilon=0.5, replicate=1)
        assert key == "family=colorable n=12 m=8 k=2 eps=0.5 rep=1"

    def test_interval_ignores_k_and_epsilon(self):
        # The interval generator consumes neither k nor epsilon, so they
        # must not split instance keys (cross-k cache hits are real hits).
        assert instance_key("interval", 10, 5, 2, 0.5, 0) == instance_key(
            "interval", 10, 5, 3, 0.9, 0
        )

    def test_uniform_keeps_k_but_ignores_epsilon(self):
        assert instance_key("uniform", 10, 5, 2, 0.5, 0) == instance_key(
            "uniform", 10, 5, 2, 0.9, 0
        )
        assert instance_key("uniform", 10, 5, 2, 0.5, 0) != instance_key(
            "uniform", 10, 5, 3, 0.5, 0
        )

    def test_replicate_always_splits(self):
        assert instance_key("interval", 10, 5, 2, 0.5, 0) != instance_key(
            "interval", 10, 5, 2, 0.5, 1
        )


class TestInstanceCache:
    def test_hit_returns_the_cached_object(self):
        cache = InstanceCache()
        first, hit1 = cache.get_or_build("colorable", 12, 8, 2, 0.5, seed=42)
        second, hit2 = cache.get_or_build("colorable", 12, 8, 2, 0.5, seed=42)
        assert (hit1, hit2) == (False, True)
        assert second is first
        assert (cache.hits, cache.misses) == (1, 1)

    def test_distinct_coordinates_miss(self):
        cache = InstanceCache()
        cache.get_or_build("colorable", 12, 8, 2, 0.5, seed=42)
        _, hit = cache.get_or_build("colorable", 12, 8, 2, 0.5, seed=43)
        assert not hit
        _, hit = cache.get_or_build("colorable", 12, 8, 3, 0.5, seed=42)
        assert not hit

    def test_interval_hits_across_k(self):
        cache = InstanceCache()
        first, _ = cache.get_or_build("interval", 10, 5, 2, 0.5, seed=1)
        second, hit = cache.get_or_build("interval", 10, 5, 3, 0.5, seed=1)
        assert hit and second is first

    def test_eviction_is_bounded_fifo(self):
        cache = InstanceCache(maxsize=2)
        cache.get_or_build("interval", 6, 3, 1, 0.5, seed=1)
        cache.get_or_build("interval", 6, 3, 1, 0.5, seed=2)
        cache.get_or_build("interval", 6, 3, 1, 0.5, seed=3)  # evicts seed=1
        assert len(cache) == 2
        _, hit = cache.get_or_build("interval", 6, 3, 1, 0.5, seed=1)
        assert not hit

    def test_clear_resets_entries_and_counters(self):
        cache = InstanceCache()
        cache.get_or_build("interval", 6, 3, 1, 0.5, seed=1)
        cache.get_or_build("interval", 6, 3, 1, 0.5, seed=1)
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(CampaignError):
            InstanceCache(maxsize=0)

    def test_cached_and_fresh_builds_are_identical(self):
        cache = InstanceCache()
        cached, _ = cache.get_or_build("colorable", 14, 8, 2, 0.5, seed=42)
        fresh = build_instance("colorable", n=14, m=8, k=2, epsilon=0.5, seed=42)
        assert instance_digest(cached) == instance_digest(fresh)


class TestExecuteTask:
    def test_row_is_pure_except_timing_and_cache_flag(self):
        payload = small_spec().task_payloads()[0]
        first = {
            k: v
            for k, v in execute_task(payload).items()
            if k not in NONDETERMINISTIC_ROW_FIELDS
        }
        second = {
            k: v
            for k, v in execute_task(payload).items()
            if k not in NONDETERMINISTIC_ROW_FIELDS
        }
        assert first == second

    def test_second_execution_hits_the_instance_cache(self):
        INSTANCE_CACHE.clear()
        payload = small_spec().task_payloads()[0]
        first = execute_task(payload)
        second = execute_task(payload)
        assert first["instance_cache_hit"] is False
        assert second["instance_cache_hit"] is True

    def test_oracle_variants_share_one_instance_build(self):
        INSTANCE_CACHE.clear()
        # One grid point swept by two oracles: one build, one hit.
        spec = small_spec(families=("colorable",), sizes=((12, 8),), replicates=1)
        rows = [execute_task(p) for p in spec.task_payloads()]
        assert [r["instance_cache_hit"] for r in rows] == [False, True]
        assert len({r["instance_digest"] for r in rows}) == 1
        assert len({r["instance_seed"] for r in rows}) == 1

    def test_done_row_matches_direct_reduction(self):
        payload = small_spec().task_payloads()[0]
        row = execute_task(payload)
        assert row["status"] == "done"
        assert row["task_key"] == payload["task_key"]
        hypergraph = build_instance(
            payload["family"],
            n=payload["n"],
            m=payload["m"],
            k=payload["k"],
            epsilon=payload["epsilon"],
            seed=payload["instance_seed"],
        )
        assert row["instance_digest"] == instance_digest(hypergraph)
        assert row["peak_triples"] == payload["k"] * hypergraph.total_edge_size()
        reduction = ConflictFreeMulticoloringViaMaxIS(
            k=payload["k"],
            approximator=resolve_oracle(payload["oracle"], payload["lam"]),
            lam=payload["lam"],
        )
        expected = reduction.run(hypergraph)
        restored = reduction_result_from_dict(row["result"])
        assert restored.multicoloring == expected.multicoloring
        assert restored.phases == expected.phases
        assert row["wall_time_s"] >= 0

    def test_infeasible_payload_yields_failed_row(self):
        payload = small_spec().task_payloads()[0]
        payload = dict(payload, family="uniform", k=payload["n"] + 1)
        row = execute_task(payload)
        assert row["status"] == "failed"
        assert row["error_type"] == "HypergraphError"
        assert "result" not in row
        assert row["wall_time_s"] >= 0
