"""Tests for the concrete SLOCAL algorithms (MIS, greedy coloring, distance coloring)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    bfs_distances,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    is_maximal_independent_set,
    is_proper_coloring,
    num_colors,
    path_graph,
    star_graph,
)
from repro.slocal import (
    SLOCALDistanceColoring,
    SLOCALEngine,
    SLOCALMIS,
    adversarial_orders,
    slocal_distance_coloring,
    slocal_greedy_coloring,
    slocal_mis,
    slocal_ruling_set,
)

from tests.conftest import graphs


class TestSLOCALMIS:
    def test_produces_maximal_independent_set(self, random_graph):
        mis = slocal_mis(random_graph)
        assert is_maximal_independent_set(random_graph, mis)

    def test_valid_for_every_adversarial_order(self, random_graph):
        for order in adversarial_orders(random_graph, n_random=2, seed=5):
            mis = slocal_mis(random_graph, order=order)
            assert is_maximal_independent_set(random_graph, mis)

    def test_locality_is_one(self):
        assert SLOCALMIS.locality == 1

    def test_complete_graph_mis_is_single_vertex(self):
        assert len(slocal_mis(complete_graph(6))) == 1

    def test_empty_graph(self):
        from repro.graphs import Graph

        assert slocal_mis(Graph()) == set()

    def test_isolated_vertices_always_join(self):
        from repro.graphs import Graph

        g = Graph(vertices=[1, 2, 3])
        assert slocal_mis(g) == {1, 2, 3}

    @given(graphs(), st.integers(min_value=0, max_value=9999))
    @settings(max_examples=40, deadline=None)
    def test_mis_valid_for_random_orders(self, g, seed):
        from repro.slocal import random_order

        mis = slocal_mis(g, order=random_order(g, seed=seed))
        assert is_maximal_independent_set(g, mis)


class TestSLOCALColoring:
    def test_produces_proper_coloring_with_delta_plus_one_colors(self, random_graph):
        coloring = slocal_greedy_coloring(random_graph)
        assert is_proper_coloring(random_graph, coloring)
        assert num_colors(coloring) <= random_graph.max_degree() + 1

    def test_star_graph_two_colors(self):
        assert num_colors(slocal_greedy_coloring(star_graph(6))) == 2

    @given(graphs(), st.integers(min_value=0, max_value=9999))
    @settings(max_examples=40, deadline=None)
    def test_coloring_valid_for_random_orders(self, g, seed):
        from repro.slocal import random_order

        coloring = slocal_greedy_coloring(g, order=random_order(g, seed=seed))
        assert is_proper_coloring(g, coloring)
        if g.num_vertices():
            assert num_colors(coloring) <= g.max_degree() + 1


class TestDistanceColoring:
    def test_distance_two_coloring_separates_close_vertices(self):
        g = path_graph(7)
        coloring = slocal_distance_coloring(g, distance=2)
        for u in g.vertices:
            dist = bfs_distances(g, u, radius=2)
            for v, d in dist.items():
                if v != u and d <= 2:
                    assert coloring[u] != coloring[v]

    def test_distance_must_be_positive(self):
        with pytest.raises(ValueError):
            SLOCALDistanceColoring(0)

    def test_locality_matches_distance(self):
        assert SLOCALDistanceColoring(3).locality == 3

    def test_cycle_distance_coloring(self):
        g = cycle_graph(9)
        coloring = slocal_distance_coloring(g, distance=2)
        # Distance-2 coloring of a cycle needs at least 3 colors.
        assert len(set(coloring.values())) >= 3


class TestRulingSet:
    def test_radius_one_matches_mis_semantics(self, random_graph):
        ruling = slocal_ruling_set(random_graph, radius=1)
        assert is_maximal_independent_set(random_graph, ruling)

    def test_radius_two_members_are_far_apart(self):
        g = path_graph(10)
        ruling = slocal_ruling_set(g, radius=2)
        members = sorted(ruling)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                assert abs(u - v) > 2

    def test_radius_two_dominates_at_distance_two(self):
        g = erdos_renyi_graph(25, 0.15, seed=8)
        ruling = slocal_ruling_set(g, radius=2)
        for v in g.vertices:
            ball2 = set(bfs_distances(g, v, radius=2))
            assert ball2 & ruling, f"vertex {v} is not dominated within distance 2"

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            slocal_ruling_set(path_graph(3), radius=0)


class TestEngineIntegration:
    def test_mis_and_coloring_share_engine(self, random_graph):
        engine = SLOCALEngine(random_graph)
        mis_result = engine.run(SLOCALMIS())
        assert mis_result.locality == 1
        assert set(mis_result.outputs) == random_graph.vertices
