"""Tests for the SLOCAL execution engine, views, state and orderings."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import LocalityViolation, ModelError
from repro.graphs import Graph, cycle_graph, path_graph, star_graph
from repro.slocal import (
    LocalView,
    NodeState,
    SLOCALAlgorithm,
    SLOCALEngine,
    StateMap,
    adversarial_orders,
    bfs_order,
    degree_order,
    random_order,
    sorted_order,
    validate_order,
)

from tests.conftest import graphs


class TestStateMap:
    def test_read_write(self):
        state = StateMap([1, 2])
        state[1].write("key", 42)
        assert state[1].read("key") == 42
        assert state[2].read("key", "default") == "default"

    def test_missing_vertex_raises(self):
        state = StateMap([1])
        with pytest.raises(ModelError):
            state[99]

    def test_outputs_only_cover_processed(self):
        state = StateMap([1, 2])
        state[1].output = "x"
        state[1].processed = True
        assert state.outputs() == {1: "x"}
        assert state.processed_vertices() == {1}

    def test_as_dict_is_copy(self):
        node = NodeState("v")
        node.write("a", 1)
        snapshot = node.as_dict()
        snapshot["a"] = 99
        assert node.read("a") == 1


class TestLocalView:
    def test_view_restricted_to_ball(self):
        g = path_graph(6)
        view = LocalView(g, StateMap(g.vertices), center=2, radius=1)
        assert view.vertices == {1, 2, 3}

    def test_reads_outside_ball_raise(self):
        g = path_graph(6)
        view = LocalView(g, StateMap(g.vertices), center=0, radius=1)
        with pytest.raises(LocalityViolation):
            view.neighbors(5)
        with pytest.raises(LocalityViolation):
            view.output_of(5)
        with pytest.raises(LocalityViolation):
            view.read_state(5, "anything")

    def test_boundary_vertices_hide_outside_edges(self):
        g = path_graph(5)
        view = LocalView(g, StateMap(g.vertices), center=2, radius=1)
        # Vertex 3 really has neighbors {2, 4}, but 4 is invisible.
        assert view.neighbors(3) == {2}
        assert view.degree_in_view(3) == 1

    def test_true_degree_available_only_when_fully_visible(self):
        g = path_graph(5)
        view = LocalView(g, StateMap(g.vertices), center=2, radius=1)
        assert view.true_degree(2) == 2
        with pytest.raises(LocalityViolation):
            view.true_degree(3)

    def test_true_degree_with_radius_zero_raises(self):
        g = path_graph(3)
        view = LocalView(g, StateMap(g.vertices), center=1, radius=0)
        with pytest.raises(LocalityViolation):
            view.true_degree(1)

    def test_state_access_within_ball(self):
        g = path_graph(3)
        state = StateMap(g.vertices)
        state[0].write("mark", "seen")
        state[0].processed = True
        state[0].output = True
        view = LocalView(g, state, center=1, radius=1)
        assert view.is_processed(0)
        assert view.output_of(0) is True
        assert view.read_state(0, "mark") == "seen"
        assert view.processed_vertices() == {0}


class TestOrderings:
    def test_sorted_and_reverse(self):
        g = path_graph(4)
        assert sorted_order(g) == [0, 1, 2, 3]

    def test_random_order_is_permutation(self):
        g = cycle_graph(8)
        order = random_order(g, seed=3)
        assert sorted(order) == sorted(g.vertices)

    def test_degree_order(self):
        g = star_graph(4)
        assert degree_order(g, descending=True)[0] == 0
        assert degree_order(g, descending=False)[-1] == 0

    def test_bfs_order_starts_at_root_component(self):
        g = path_graph(4)
        order = bfs_order(g, root=2)
        assert order[0] == 2

    def test_bfs_order_covers_disconnected_graphs(self):
        g = Graph(edges=[(0, 1)], vertices=[5])
        assert sorted(bfs_order(g)) == [0, 1, 5]

    def test_validate_order_rejects_bad_orders(self):
        g = path_graph(3)
        with pytest.raises(ModelError):
            validate_order(g, [0, 1])
        with pytest.raises(ModelError):
            validate_order(g, [0, 1, 1])
        with pytest.raises(ModelError):
            validate_order(g, [0, 1, 2, 3])

    def test_adversarial_orders_are_all_permutations(self):
        g = cycle_graph(7)
        for order in adversarial_orders(g, n_random=2, seed=1):
            assert sorted(order, key=repr) == sorted(g.vertices, key=repr)


class _CountingRule(SLOCALAlgorithm):
    """Outputs how many processed vertices are visible (for engine tests)."""

    locality = 1
    name = "counting"

    def process(self, view, state):
        state.write("ball", len(view.vertices))
        return len(view.processed_vertices())


class TestEngine:
    def test_all_vertices_get_outputs(self, random_graph):
        result = SLOCALEngine(random_graph).run(_CountingRule())
        assert set(result.outputs) == random_graph.vertices
        assert result.locality == 1

    def test_first_processed_vertex_sees_no_processed_neighbors(self):
        g = path_graph(4)
        result = SLOCALEngine(g).run(_CountingRule(), order=[2, 1, 3, 0])
        assert result.outputs[2] == 0
        assert result.order == [2, 1, 3, 0]

    def test_bare_rule_requires_locality(self):
        g = path_graph(3)
        with pytest.raises(ModelError):
            SLOCALEngine(g).run(lambda view, state: 0)

    def test_bare_rule_with_locality(self):
        g = path_graph(3)
        result = SLOCALEngine(g).run(lambda view, state: len(view.vertices), locality=2)
        assert result.outputs[0] == 3

    def test_negative_locality_rejected(self):
        with pytest.raises(ModelError):
            SLOCALEngine(path_graph(2)).run(lambda v, s: 0, locality=-1)

    def test_invalid_order_rejected(self):
        with pytest.raises(ModelError):
            SLOCALEngine(path_graph(3)).run(_CountingRule(), order=[0, 1])

    def test_ball_sizes_recorded(self):
        g = star_graph(5)
        result = SLOCALEngine(g).run(_CountingRule())
        assert result.ball_sizes[0] == 6
        assert result.max_ball_size() == 6

    def test_finalize_must_preserve_vertices(self):
        class BadFinalize(SLOCALAlgorithm):
            locality = 0

            def process(self, view, state):
                return 1

            def finalize(self, outputs):
                outputs.pop(next(iter(outputs)))
                return outputs

        with pytest.raises(ModelError):
            SLOCALEngine(path_graph(3)).run(BadFinalize())

    def test_run_over_orders_returns_one_result_per_order(self):
        g = cycle_graph(5)
        orders = adversarial_orders(g, n_random=1, seed=0)
        results = SLOCALEngine(g).run_over_orders(_CountingRule(), orders)
        assert len(results) == len(orders)

    @given(graphs(max_n=10), st.integers(min_value=0, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_locality_enforced_for_any_radius(self, g, radius):
        def nosy_rule(view, state):
            # Touch every visible vertex; the view itself guards the radius.
            return sum(1 for v in view.vertices if view.is_processed(v) or True)

        result = SLOCALEngine(g).run(nosy_rule, locality=radius)
        assert set(result.outputs) == g.vertices
