"""Tests for the SLOCAL conflict-free coloring algorithms over the primal graph."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring import (
    num_colors_used,
    verify_conflict_free_coloring,
)
from repro.hypergraph import (
    Hypergraph,
    colorable_almost_uniform_hypergraph,
    sunflower_hypergraph,
    uniform_random_hypergraph,
)
from repro.slocal import (
    random_order,
    slocal_primal_conflict_free_coloring,
    slocal_unique_witness_coloring,
)

from tests.conftest import hypergraphs


class TestPrimalColoring:
    def test_result_is_total_and_conflict_free(self, small_hypergraph):
        coloring = slocal_primal_conflict_free_coloring(small_hypergraph)
        verify_conflict_free_coloring(small_hypergraph, coloring, require_total=True)

    def test_color_count_bounded_by_primal_degree(self, small_hypergraph):
        coloring = slocal_primal_conflict_free_coloring(small_hypergraph)
        bound = small_hypergraph.primal_graph().max_degree() + 1
        assert num_colors_used(coloring) <= bound

    def test_on_random_hypergraph(self):
        h = uniform_random_hypergraph(25, 15, 4, seed=3)
        coloring = slocal_primal_conflict_free_coloring(h)
        verify_conflict_free_coloring(h, coloring, require_total=True)

    @given(hypergraphs(max_n=10, max_m=6), st.integers(min_value=0, max_value=9999))
    @settings(max_examples=25, deadline=None)
    def test_conflict_free_for_random_orders(self, h, seed):
        order = random_order(h.primal_graph(), seed=seed)
        coloring = slocal_primal_conflict_free_coloring(h, order=order)
        verify_conflict_free_coloring(h, coloring)


class TestUniqueWitnessColoring:
    def test_result_is_conflict_free(self, small_hypergraph):
        coloring = slocal_unique_witness_coloring(small_hypergraph)
        verify_conflict_free_coloring(small_hypergraph, coloring)

    def test_uses_no_more_colored_vertices_than_the_baseline(self):
        h, _ = colorable_almost_uniform_hypergraph(n=30, m=18, k=3, seed=9)
        frugal = slocal_unique_witness_coloring(h)
        baseline = slocal_primal_conflict_free_coloring(h)
        assert len(frugal) <= len(baseline)
        verify_conflict_free_coloring(h, frugal)

    def test_singleton_edges_force_their_vertex_to_be_colored(self):
        h = Hypergraph.from_edge_list([[0], [1], [0, 1, 2]])
        coloring = slocal_unique_witness_coloring(h)
        assert 0 in coloring and 1 in coloring
        verify_conflict_free_coloring(h, coloring)

    def test_sunflower(self):
        h = sunflower_hypergraph(n_petals=5, petal_size=2, core_size=2)
        coloring = slocal_unique_witness_coloring(h)
        verify_conflict_free_coloring(h, coloring)

    def test_edgeless_hypergraph_colors_nothing(self):
        h = Hypergraph(vertices=[0, 1, 2])
        assert slocal_unique_witness_coloring(h) == {}

    @given(hypergraphs(max_n=10, max_m=6), st.integers(min_value=0, max_value=9999))
    @settings(max_examples=30, deadline=None)
    def test_conflict_free_for_random_orders(self, h, seed):
        order = random_order(h.primal_graph(), seed=seed)
        coloring = slocal_unique_witness_coloring(h, order=order)
        verify_conflict_free_coloring(h, coloring)

    @given(hypergraphs(max_n=10, max_m=6))
    @settings(max_examples=25, deadline=None)
    def test_never_uses_more_colors_than_primal_degree_bound(self, h):
        coloring = slocal_unique_witness_coloring(h)
        assert num_colors_used(coloring) <= h.primal_graph().max_degree() + 1
