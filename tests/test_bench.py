"""Smoke tests for the perf harness and the BENCH_*.json schema."""

from __future__ import annotations

import json

import pytest

from repro import bench
from repro.cli import main as cli_main


@pytest.fixture(scope="module")
def smoke_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench")
    written = bench.run(out_dir=str(out), smoke=True, repeats=1)
    return out, written


class TestHarness:
    def test_writes_both_files(self, smoke_run):
        out, written = smoke_run
        assert (out / bench.CONFLICT_GRAPH_BENCH).is_file()
        assert (out / bench.MAXIS_BENCH).is_file()
        assert set(written) == {"conflict_graph", "maxis"}

    def test_conflict_graph_payload_schema(self, smoke_run):
        out, _ = smoke_run
        payload = json.loads((out / bench.CONFLICT_GRAPH_BENCH).read_text())
        bench.validate_bench_payload(payload)
        assert payload["benchmark"] == "conflict_graph_build"
        (record,) = payload["records"]
        assert record["label"] == "n=30,m=20"
        (_, hypergraph, _, k) = bench.hypergraph_family(sizes=bench.SMOKE_SIZES)[0]
        assert record["peak_triples"] == k * hypergraph.total_edge_size()
        assert record["wall_time_s"] >= 0
        assert "legacy_wall_time_s" in record
        assert record["speedup"] > 0

    def test_maxis_payload_schema(self, smoke_run):
        out, _ = smoke_run
        payload = json.loads((out / bench.MAXIS_BENCH).read_text())
        bench.validate_bench_payload(payload)
        assert payload["benchmark"] == "maxis_solve"
        algorithms = {r["algorithm"] for r in payload["records"]}
        assert set(bench.DEFAULT_MAXIS_ALGORITHMS) <= algorithms
        for record in payload["records"]:
            assert record["is_size"] > 0
            assert record["n"] == record["peak_triples"]  # conflict-graph workloads

    def test_validate_rejects_malformed_payloads(self):
        with pytest.raises(ValueError):
            bench.validate_bench_payload({})
        with pytest.raises(ValueError):
            bench.validate_bench_payload(bench.make_payload("x", []))
        with pytest.raises(ValueError):
            bench.validate_bench_payload(
                bench.make_payload("x", [{"label": "w", "n": 1, "m": 1}])
            )
        bad_version = bench.make_payload(
            "x", [{"label": "w", "n": 1, "m": 1, "wall_time_s": 0.1, "peak_triples": 4}]
        )
        bad_version["schema_version"] = 999
        with pytest.raises(ValueError):
            bench.validate_bench_payload(bad_version)

    def test_cli_bench_subcommand(self, tmp_path, capsys):
        exit_code = cli_main(
            ["bench", "--smoke", "--out-dir", str(tmp_path), "--repeats", "1"]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "conflict_graph_build" in captured
        assert (tmp_path / bench.CONFLICT_GRAPH_BENCH).is_file()
        payload = json.loads((tmp_path / bench.CONFLICT_GRAPH_BENCH).read_text())
        bench.validate_bench_payload(payload)
