"""Smoke tests for the perf harness and the BENCH_*.json schema."""

from __future__ import annotations

import json

import pytest

from repro import bench
from repro.cli import main as cli_main


@pytest.fixture(scope="module")
def smoke_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench")
    written = bench.run(out_dir=str(out), smoke=True, repeats=1)
    return out, written


class TestHarness:
    def test_writes_all_files(self, smoke_run):
        out, written = smoke_run
        assert (out / bench.CONFLICT_GRAPH_BENCH).is_file()
        assert (out / bench.MAXIS_BENCH).is_file()
        assert (out / bench.REDUCTION_BENCH).is_file()
        assert (out / bench.CAMPAIGN_BENCH).is_file()
        assert set(written) == {"conflict_graph", "maxis", "reduction", "campaign"}

    def test_conflict_graph_payload_schema(self, smoke_run):
        out, _ = smoke_run
        payload = json.loads((out / bench.CONFLICT_GRAPH_BENCH).read_text())
        bench.validate_bench_payload(payload)
        assert payload["benchmark"] == "conflict_graph_build"
        (record,) = payload["records"]
        assert record["label"] == "n=30,m=20"
        (_, hypergraph, _, k) = bench.hypergraph_family(sizes=bench.SMOKE_SIZES)[0]
        assert record["peak_triples"] == k * hypergraph.total_edge_size()
        assert record["wall_time_s"] >= 0
        assert "legacy_wall_time_s" in record
        assert record["speedup"] > 0

    def test_maxis_payload_schema(self, smoke_run):
        out, _ = smoke_run
        payload = json.loads((out / bench.MAXIS_BENCH).read_text())
        bench.validate_bench_payload(payload)
        assert payload["benchmark"] == "maxis_solve"
        algorithms = {r["algorithm"] for r in payload["records"]}
        assert set(bench.DEFAULT_MAXIS_ALGORITHMS) <= algorithms
        for record in payload["records"]:
            assert record["is_size"] > 0
            assert record["n"] == record["peak_triples"]  # conflict-graph workloads

    def test_reduction_payload_schema(self, smoke_run):
        out, _ = smoke_run
        payload = json.loads((out / bench.REDUCTION_BENCH).read_text())
        bench.validate_bench_payload(payload)
        assert payload["benchmark"] == "reduction_pipeline"
        oracles = {r["oracle"] for r in payload["records"]}
        assert f"first-fit@1/{bench.REDUCTION_LAM:g}" in oracles
        for record in payload["records"]:
            assert record["num_phases"] >= 1
            assert record["total_colors"] >= 1
            assert record["rebuild_wall_time_s"] >= 0
            assert record["speedup"] is None or record["speedup"] > 0
        capped = [r for r in payload["records"] if "@" in r["oracle"]]
        full = [r for r in payload["records"] if "@" not in r["oracle"]]
        # The λ-capped regime needs strictly more phases than full strength.
        assert min(r["num_phases"] for r in capped) >= max(r["num_phases"] for r in full)

    def test_campaign_payload_schema(self, smoke_run):
        out, _ = smoke_run
        payload = json.loads((out / bench.CAMPAIGN_BENCH).read_text())
        bench.validate_bench_payload(payload)
        assert payload["benchmark"] == "campaign_run"
        labels = [r["label"] for r in payload["records"]]
        assert labels[0] == "serial"
        assert any(label.startswith("workers=") for label in labels[1:])
        digests = {r["digest"] for r in payload["records"]}
        # Byte-identical aggregates: serial, pool, sharded-merged and
        # warm-pool runs all share one digest.
        assert len(digests) == 1
        serial = payload["records"][0]
        assert serial["workers"] == 1
        assert serial["speedup"] == 1.0
        assert serial["shards"] == 1
        assert serial["pool_warm"] is False
        # The bench spec sweeps two oracles per grid point, so half the
        # serial instance builds come from the in-process cache.
        assert serial["cache_hits"] == serial["tasks"] // 2
        by_label = {r["label"]: r for r in payload["records"]}
        sharded = by_label[f"shards={bench.CAMPAIGN_BENCH_SHARDS}"]
        assert sharded["shards"] == bench.CAMPAIGN_BENCH_SHARDS
        warm = next(r for r in payload["records"] if r["label"].endswith("-warm"))
        assert warm["pool_warm"] is True
        supervised = by_label["supervised"]
        assert supervised["shards"] == bench.CAMPAIGN_BENCH_SHARDS
        assert supervised["pool_warm"] is False
        for record in payload["records"]:
            assert record["tasks"] == record["n"]
            assert record["m"] == record["tasks"]  # every task completed
            assert record["tasks_per_s"] > 0
            # Fault-free bench: the fault-tolerance machinery never fires.
            assert record["restarts"] == 0
            assert record["timeouts"] == 0
            assert record["retried"] == 0

    def test_run_rejects_unknown_family(self, tmp_path):
        with pytest.raises(ValueError):
            bench.run(out_dir=str(tmp_path), smoke=True, families=["nope"])

    def test_run_family_subset(self, tmp_path):
        written = bench.run(
            out_dir=str(tmp_path), smoke=True, repeats=1, families=["reduction"]
        )
        assert set(written) == {"reduction"}
        assert not (tmp_path / bench.CONFLICT_GRAPH_BENCH).exists()
        payload = json.loads((tmp_path / bench.REDUCTION_BENCH).read_text())
        bench.validate_bench_payload(payload)

    def test_validate_rejects_malformed_payloads(self):
        with pytest.raises(ValueError):
            bench.validate_bench_payload({})
        with pytest.raises(ValueError):
            bench.validate_bench_payload(bench.make_payload("x", []))
        with pytest.raises(ValueError):
            bench.validate_bench_payload(
                bench.make_payload("x", [{"label": "w", "n": 1, "m": 1}])
            )
        bad_version = bench.make_payload(
            "x", [{"label": "w", "n": 1, "m": 1, "wall_time_s": 0.1, "peak_triples": 4}]
        )
        bad_version["schema_version"] = 999
        with pytest.raises(ValueError):
            bench.validate_bench_payload(bad_version)

    def test_cli_bench_subcommand(self, tmp_path, capsys):
        exit_code = cli_main(
            ["bench", "--smoke", "--out-dir", str(tmp_path), "--repeats", "1"]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "conflict_graph_build" in captured
        assert (tmp_path / bench.CONFLICT_GRAPH_BENCH).is_file()
        payload = json.loads((tmp_path / bench.CONFLICT_GRAPH_BENCH).read_text())
        bench.validate_bench_payload(payload)
