"""Tests for the command-line interface (python -m repro ...)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCLI:
    def test_registry_command(self, capsys):
        assert main(["registry"]) == 0
        out = capsys.readouterr().out
        assert "maxis-approx" in out
        assert "complete" in out

    def test_reduce_command_small_instance(self, capsys):
        code = main(
            [
                "reduce",
                "--vertices", "20",
                "--edges", "12",
                "--palette", "2",
                "--oracle", "greedy-min-degree",
                "--lam", "4",
                "--seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "conflict-free: True" in out
        assert "phases" in out

    def test_lemma21_command(self, capsys):
        assert main(["lemma21", "--vertices", "16", "--edges", "8", "--palette", "2"]) == 0
        out = capsys.readouterr().out
        assert "|I_f| (lemma a)" in out

    def test_models_command(self, capsys):
        assert main(["models", "--vertices", "30", "--probability", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "luby_rounds" in out

    def test_unknown_oracle_rejected(self):
        with pytest.raises(SystemExit):
            main(["reduce", "--oracle", "not-an-oracle"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_module_entry_point_importable(self):
        import repro.__main__  # noqa: F401  (import must not execute main)


class TestCampaignCLI:
    SPEC = {
        "name": "cli-campaign",
        "seed": 5,
        "families": ["colorable"],
        "sizes": [[10, 6]],
        "ks": [2],
        "oracles": ["greedy-first-fit", "capped:greedy-first-fit"],
        "lams": [2.0],
        "replicates": 2,
    }

    @pytest.fixture
    def spec_path(self, tmp_path):
        import json

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(self.SPEC))
        return path

    def test_run_status_report_round_trip(self, spec_path, tmp_path, capsys):
        out = tmp_path / "campaign"
        assert main(
            ["campaign", "run", "--spec", str(spec_path), "--out", str(out)]
        ) == 0
        run_output = capsys.readouterr().out
        assert "4/4 done" in run_output
        assert "aggregate digest: " in run_output
        digest = run_output.rsplit("aggregate digest: ", 1)[1].strip()

        assert main(["campaign", "status", "--out", str(out)]) == 0
        status_output = capsys.readouterr().out
        assert "cli-campaign" in status_output
        assert "pending" in status_output

        records_path = tmp_path / "records.json"
        assert main(
            ["campaign", "report", "--out", str(out), "--records", str(records_path)]
        ) == 0
        report_output = capsys.readouterr().out
        assert "C1" in report_output and "C2" in report_output
        assert digest in report_output
        assert records_path.is_file()

        from repro.analysis import read_records

        experiments = [record.experiment for record in read_records(str(records_path))]
        assert experiments == ["C1", "C2"]

    def test_run_with_workers_matches_serial_digest(self, spec_path, tmp_path, capsys):
        assert main(
            ["campaign", "run", "--spec", str(spec_path), "--out", str(tmp_path / "a")]
        ) == 0
        serial = capsys.readouterr().out.rsplit("aggregate digest: ", 1)[1].strip()
        assert main(
            [
                "campaign", "run",
                "--spec", str(spec_path),
                "--out", str(tmp_path / "b"),
                "--workers", "2",
            ]
        ) == 0
        parallel = capsys.readouterr().out.rsplit("aggregate digest: ", 1)[1].strip()
        assert serial == parallel

    def test_run_resumes_completed_campaign(self, spec_path, tmp_path, capsys):
        out = tmp_path / "campaign"
        main(["campaign", "run", "--spec", str(spec_path), "--out", str(out)])
        capsys.readouterr()
        assert main(["campaign", "run", "--spec", str(spec_path), "--out", str(out)]) == 0
        assert "4 resumed" in capsys.readouterr().out

    def test_missing_spec_file_errors(self, tmp_path, capsys):
        code = main(
            ["campaign", "run", "--spec", str(tmp_path / "nope.json"), "--out", str(tmp_path)]
        )
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_malformed_spec_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x"}')
        code = main(["campaign", "run", "--spec", str(bad), "--out", str(tmp_path / "out")])
        assert code == 2
        assert "campaign error" in capsys.readouterr().err

    def test_status_on_non_campaign_directory_errors(self, tmp_path, capsys):
        code = main(["campaign", "status", "--out", str(tmp_path / "nothing")])
        assert code == 2
        assert "campaign error" in capsys.readouterr().err

    def test_missing_campaign_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            main(["campaign"])

    def test_status_reports_cache_counters(self, spec_path, tmp_path, capsys):
        out = tmp_path / "campaign"
        main(["campaign", "run", "--spec", str(spec_path), "--out", str(out)])
        capsys.readouterr()
        assert main(["campaign", "status", "--out", str(out)]) == 0
        status_output = capsys.readouterr().out
        assert "cache_hits" in status_output and "cache_misses" in status_output


class TestCampaignShardCLI:
    SPEC = dict(TestCampaignCLI.SPEC, name="cli-shard-campaign")

    @pytest.fixture
    def spec_path(self, tmp_path):
        import json

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(self.SPEC))
        return path

    def _digest(self, output: str) -> str:
        return output.rsplit("aggregate digest: ", 1)[1].strip()

    def test_sharded_runs_merge_to_the_serial_digest(self, spec_path, tmp_path, capsys):
        assert main(
            ["campaign", "run", "--spec", str(spec_path), "--out", str(tmp_path / "full")]
        ) == 0
        reference = self._digest(capsys.readouterr().out)

        for index in range(2):
            assert main(
                [
                    "campaign", "run",
                    "--spec", str(spec_path),
                    "--out", str(tmp_path / f"shard{index}"),
                    "--shard", f"{index}/2",
                ]
            ) == 0
            shard_output = capsys.readouterr().out
            assert f"shard {index}/2" in shard_output

        assert main(
            [
                "campaign", "merge",
                "--out", str(tmp_path / "merged"),
                str(tmp_path / "shard0"),
                str(tmp_path / "shard1"),
            ]
        ) == 0
        merge_output = capsys.readouterr().out
        assert "merged 2 shard store(s)" in merge_output
        assert "4/4 done" in merge_output
        assert self._digest(merge_output) == reference

    def test_partial_shard_status_report(self, spec_path, tmp_path, capsys):
        out = tmp_path / "shard0"
        assert main(
            [
                "campaign", "run",
                "--spec", str(spec_path),
                "--out", str(out),
                "--shard", "0/2",
            ]
        ) == 0
        run_output = capsys.readouterr().out
        assert main(["campaign", "status", "--out", str(out)]) == 0
        status_output = capsys.readouterr().out
        # The shard store holds only its own tasks: the rest stay pending.
        from repro.runtime import CampaignSpec, CampaignStore

        spec = CampaignSpec.from_dict(self.SPEC)
        done = len(CampaignStore(out).completed_keys())
        assert 0 < done < spec.num_tasks()
        assert f"shard 0/2 ({done} tasks)" in run_output
        assert str(spec.num_tasks() - done) in status_output

    def test_shard_index_out_of_range_exits_2(self, spec_path, tmp_path, capsys):
        code = main(
            [
                "campaign", "run",
                "--spec", str(spec_path),
                "--out", str(tmp_path / "out"),
                "--shard", "5/2",
            ]
        )
        assert code == 2
        assert "shard index" in capsys.readouterr().err

    def test_malformed_shard_argument_exits_2(self, spec_path, tmp_path, capsys):
        code = main(
            [
                "campaign", "run",
                "--spec", str(spec_path),
                "--out", str(tmp_path / "out"),
                "--shard", "zero/two",
            ]
        )
        assert code == 2
        assert "--shard must look like I/N" in capsys.readouterr().err

    def test_merge_mismatched_spec_digests_exits_2(self, spec_path, tmp_path, capsys):
        import json

        other_spec = tmp_path / "other.json"
        other_spec.write_text(json.dumps(dict(self.SPEC, seed=99)))
        main(["campaign", "run", "--spec", str(spec_path), "--out", str(tmp_path / "a")])
        main(["campaign", "run", "--spec", str(other_spec), "--out", str(tmp_path / "b")])
        capsys.readouterr()
        code = main(
            [
                "campaign", "merge",
                "--out", str(tmp_path / "merged"),
                str(tmp_path / "a"),
                str(tmp_path / "b"),
            ]
        )
        assert code == 2
        assert "refusing to merge" in capsys.readouterr().err

    def test_merge_missing_shard_directory_exits_2(self, tmp_path, capsys):
        code = main(
            ["campaign", "merge", "--out", str(tmp_path / "merged"), str(tmp_path / "nope")]
        )
        assert code == 2
        assert "campaign error" in capsys.readouterr().err

    def test_merge_requires_shard_arguments(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "merge", "--out", str(tmp_path / "merged")])


class TestCampaignStoreCLI:
    """The store-facing subcommands: compact, --store, single-read status."""

    SPEC = dict(TestCampaignCLI.SPEC, name="cli-store-campaign")

    @pytest.fixture
    def spec_path(self, tmp_path):
        import json

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(self.SPEC))
        return path

    def _digest(self, output: str) -> str:
        return output.rsplit("aggregate digest: ", 1)[1].strip()

    def test_compact_drops_superseded_rows_and_keeps_the_digest(
        self, spec_path, tmp_path, capsys
    ):
        from repro.runtime import CampaignStore

        out = tmp_path / "campaign"
        assert main(
            ["campaign", "run", "--spec", str(spec_path), "--out", str(out)]
        ) == 0
        reference = self._digest(capsys.readouterr().out)
        # Plant a superseded duplicate row, as a crash-and-retry would.
        store = CampaignStore(out)
        store.append(store.rows()[0])
        assert main(["campaign", "compact", "--out", str(out)]) == 0
        output = capsys.readouterr().out
        assert "5 -> 4 rows (1 superseded/duplicate dropped)" in output
        assert self._digest(output) == reference
        # Idempotent: a second compact finds nothing to drop.
        assert main(["campaign", "compact", "--out", str(out)]) == 0
        assert "4 -> 4 rows (0 superseded/duplicate dropped)" in capsys.readouterr().out

    def test_compact_on_non_campaign_directory_errors(self, tmp_path, capsys):
        assert main(["campaign", "compact", "--out", str(tmp_path / "nope")]) == 2
        assert "campaign error" in capsys.readouterr().err

    def test_store_flag_selects_the_sqlite_backend(self, spec_path, tmp_path, capsys):
        assert main(
            ["campaign", "run", "--spec", str(spec_path), "--out", str(tmp_path / "jl")]
        ) == 0
        reference = self._digest(capsys.readouterr().out)
        out = tmp_path / "sq"
        assert main(
            [
                "campaign", "run",
                "--spec", str(spec_path),
                "--out", str(out),
                "--store", "sqlite",
            ]
        ) == 0
        run_output = capsys.readouterr().out
        assert "4/4 done" in run_output
        assert self._digest(run_output) == reference
        assert (out / "results.sqlite").is_file()
        assert not (out / "results.jsonl").exists()
        # status / report / compact all work against the indexed backend.
        assert main(["campaign", "status", "--out", str(out)]) == 0
        assert "cli-store-campaign" in capsys.readouterr().out
        assert main(["campaign", "report", "--out", str(out)]) == 0
        assert self._digest(capsys.readouterr().out) == reference
        assert main(["campaign", "compact", "--out", str(out)]) == 0
        assert self._digest(capsys.readouterr().out) == reference

    def test_status_reads_the_row_log_at_most_once(
        self, spec_path, tmp_path, capsys, monkeypatch
    ):
        import builtins

        out = tmp_path / "campaign"
        assert main(
            ["campaign", "run", "--spec", str(spec_path), "--out", str(out)]
        ) == 0
        capsys.readouterr()

        opens = []
        real_open = builtins.open

        def counting_open(file, *args, **kwargs):
            if "results.jsonl" in str(file):
                opens.append(str(file))
            return real_open(file, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", counting_open)
        # Warm: the run already built the aggregate sidecar, so status
        # answers from it without touching the row log at all.
        assert main(["campaign", "status", "--out", str(out)]) == 0
        assert len(opens) == 0, f"warm status re-read the row log: {opens}"
        # Cold: with the sidecar gone, one single scan rebuilds it — the
        # old code opened the log 3-4 times for the same command.
        (out / "aggregates.json").unlink()
        assert main(["campaign", "status", "--out", str(out)]) == 0
        assert len(opens) == 1, f"cold status read the row log {len(opens)} times"
