"""Tests for the command-line interface (python -m repro ...)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCLI:
    def test_registry_command(self, capsys):
        assert main(["registry"]) == 0
        out = capsys.readouterr().out
        assert "maxis-approx" in out
        assert "complete" in out

    def test_reduce_command_small_instance(self, capsys):
        code = main(
            [
                "reduce",
                "--vertices", "20",
                "--edges", "12",
                "--palette", "2",
                "--oracle", "greedy-min-degree",
                "--lam", "4",
                "--seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "conflict-free: True" in out
        assert "phases" in out

    def test_lemma21_command(self, capsys):
        assert main(["lemma21", "--vertices", "16", "--edges", "8", "--palette", "2"]) == 0
        out = capsys.readouterr().out
        assert "|I_f| (lemma a)" in out

    def test_models_command(self, capsys):
        assert main(["models", "--vertices", "30", "--probability", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "luby_rounds" in out

    def test_unknown_oracle_rejected(self):
        with pytest.raises(SystemExit):
            main(["reduce", "--oracle", "not-an-oracle"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_module_entry_point_importable(self):
        import repro.__main__  # noqa: F401  (import must not execute main)
