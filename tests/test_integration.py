"""End-to-end integration tests across subsystems.

These tests exercise the whole chain the paper describes: generate a hard
instance, build conflict graphs, call MaxIS oracles, run the phase-based
reduction, verify the multicoloring, and cross-check against the SLOCAL /
LOCAL simulators and baseline conflict-free coloring algorithms.
"""

from __future__ import annotations

import pytest

from repro import (
    colorable_almost_uniform_hypergraph,
    get_approximator,
    solve_conflict_free_multicoloring,
    verify_reduction_result,
)
from repro.analysis import decay_curve, effective_lambda, run_summary
from repro.coloring import (
    Multicoloring,
    greedy_conflict_free_coloring,
    interval_conflict_free_coloring,
    num_colors_used,
    single_coloring_as_multicoloring,
    verify_conflict_free_multicoloring,
)
from repro.coloring.interval import canonical_point_order
from repro.core import ConflictGraph, phase_budget, verify_lemma_21a, verify_lemma_21b
from repro.graphs import is_maximal_independent_set
from repro.hypergraph import graph_as_hypergraph, random_interval_hypergraph
from repro.local_model import VirtualGraphEmbedding, luby_mis
from repro.maxis import available_approximators
from repro.reductions import (
    cf_multicoloring_to_maxis_reduction,
    recommended_color_budget,
)
from repro.slocal import slocal_mis


class TestFullPipelinePerOracle:
    @pytest.mark.parametrize("oracle_name", sorted(set(available_approximators()) - {"exact"}))
    def test_reduction_with_every_registered_oracle(self, oracle_name):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=30, m=18, k=3, seed=41)
        result = solve_conflict_free_multicoloring(
            hypergraph, k=3, approximator=get_approximator(oracle_name), lam=6.0
        )
        report = verify_reduction_result(hypergraph, result)
        assert report.conflict_free
        assert result.total_colors <= result.color_bound
        assert result.num_phases <= result.phase_bound

    def test_exact_oracle_on_small_instance(self):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=10, m=5, k=2, seed=42)
        result = solve_conflict_free_multicoloring(
            hypergraph, k=2, approximator=get_approximator("exact"), lam=1.0
        )
        assert result.num_phases == 1
        assert result.total_colors <= 2


class TestLemmaPipeline:
    def test_lemmas_and_reduction_agree_on_the_same_instance(self):
        hypergraph, planted = colorable_almost_uniform_hypergraph(n=24, m=12, k=3, seed=43)
        cg = ConflictGraph(hypergraph, 3)
        witness = verify_lemma_21a(cg, planted)
        assert len(witness) == hypergraph.num_edges()

        oracle = get_approximator("greedy-min-degree")
        independent_set = oracle(cg.graph)
        happy = verify_lemma_21b(cg, independent_set)
        # Lemma 2.1(a) says the optimum equals m, so the (Δ+1)-approximation
        # must cover at least m / (Δ+1) edges in one phase.
        delta = cg.graph.max_degree()
        assert len(happy) >= hypergraph.num_edges() / (delta + 1)

    def test_reduction_phase_count_matches_effective_lambda(self):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=28, m=16, k=3, seed=44)
        result = solve_conflict_free_multicoloring(
            hypergraph, k=3, approximator=get_approximator("luby-best-of-5"), lam=8.0
        )
        lam_eff = effective_lambda(result)
        assert result.num_phases <= phase_budget(lam_eff, hypergraph.num_edges()) + 1
        curve = decay_curve(result)
        assert curve.observed[-1] == 0
        summary = run_summary(result)
        assert summary["within_color_bound"] == 1.0


class TestAgainstBaselines:
    def test_reduction_and_greedy_baseline_both_conflict_free(self):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=26, m=14, k=3, seed=45)
        reduction_result = solve_conflict_free_multicoloring(
            hypergraph, k=3, approximator=get_approximator("greedy-min-degree"), lam=5.0
        )
        baseline = greedy_conflict_free_coloring(hypergraph)
        verify_conflict_free_multicoloring(hypergraph, reduction_result.multicoloring)
        baseline_mc = single_coloring_as_multicoloring(baseline)
        verify_conflict_free_multicoloring(hypergraph, baseline_mc)

    def test_interval_instance_solved_by_both_routes(self):
        hypergraph = random_interval_hypergraph(24, 16, seed=46)
        order = canonical_point_order(hypergraph)
        direct = interval_conflict_free_coloring(hypergraph, order)
        assert num_colors_used(direct) <= 6

        result = solve_conflict_free_multicoloring(
            hypergraph, k=6, approximator=get_approximator("greedy-min-degree"), lam=5.0
        )
        report = verify_reduction_result(hypergraph, result)
        assert report.conflict_free

    def test_mis_instance_as_two_uniform_hypergraph(self):
        # A conflict-free coloring of the 2-uniform hypergraph of a graph is
        # related to, but weaker than, proper coloring; the pipeline must
        # still handle the 2-uniform case.
        from repro.graphs import erdos_renyi_graph

        g = erdos_renyi_graph(15, 0.25, seed=47)
        if g.num_edges() == 0:
            pytest.skip("degenerate random instance")
        hypergraph = graph_as_hypergraph(g)
        result = solve_conflict_free_multicoloring(
            hypergraph, k=2, approximator=get_approximator("greedy-min-degree"), lam=4.0
        )
        report = verify_reduction_result(hypergraph, result)
        assert report.conflict_free


class TestModelsIntegration:
    def test_conflict_graph_runs_inside_virtual_embedding(self):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=18, m=9, k=2, seed=48)
        cg = ConflictGraph(hypergraph, 2)
        host = hypergraph.primal_graph()
        embedding = VirtualGraphEmbedding(host, cg.graph, cg.host_assignment())
        stats = embedding.stats()
        assert stats.dilation <= 2
        assert stats.num_virtual_vertices == cg.num_vertices()
        # Simulating an O(log n)-round virtual algorithm costs only a constant
        # factor more on the host.
        assert embedding.simulation_rounds(10) <= 20

    def test_slocal_and_local_mis_agree_on_validity(self):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=20, m=10, k=2, seed=49)
        cg = ConflictGraph(hypergraph, 2)
        graph = cg.graph
        slocal_result = slocal_mis(graph)
        luby_result, run = luby_mis(graph, seed=50)
        assert is_maximal_independent_set(graph, slocal_result)
        assert is_maximal_independent_set(graph, luby_result)
        assert run.terminated

    def test_mis_oracle_built_from_luby_drives_the_reduction(self):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=22, m=12, k=2, seed=51)

        def luby_oracle(graph):
            mis, _ = luby_mis(graph, seed=52)
            return mis

        result = solve_conflict_free_multicoloring(
            hypergraph, k=2, approximator=luby_oracle, lam=10.0
        )
        report = verify_reduction_result(hypergraph, result)
        assert report.conflict_free


class TestFrameworkIntegration:
    def test_paper_reduction_through_framework_interface(self):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=24, m=13, k=3, seed=53)
        lam = 6.0
        reduction = cf_multicoloring_to_maxis_reduction(k=3, lam=lam)
        budget = recommended_color_budget(3, lam, hypergraph.num_edges())
        oracle = lambda instance: get_approximator("greedy-min-degree")(instance[0])  # noqa: E731
        run = reduction.apply((hypergraph, budget), oracle)
        assert isinstance(run.solution, Multicoloring)
        assert run.details["phases"] <= run.details["phase_bound"]
        assert run.overhead.oracle_calls == run.details["phases"]
