"""Tests of the top-level package surface: exports, exceptions, version, docstring example."""

from __future__ import annotations

import pytest

import repro
from repro import (
    ApproximationError,
    ColoringError,
    GraphError,
    HypergraphError,
    IndependenceError,
    LocalityViolation,
    ModelError,
    ReductionError,
    ReproError,
    VerificationError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            HypergraphError,
            ColoringError,
            IndependenceError,
            ApproximationError,
            ReductionError,
            ModelError,
            VerificationError,
        ],
    )
    def test_all_errors_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_locality_violation_is_a_model_error(self):
        assert issubclass(LocalityViolation, ModelError)

    def test_errors_are_catchable_by_base_class(self):
        with pytest.raises(ReproError):
            raise GraphError("boom")


class TestPackageSurface:
    def test_version_string(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_docstring_example_runs(self):
        from repro import (
            colorable_almost_uniform_hypergraph,
            get_approximator,
            solve_conflict_free_multicoloring,
            verify_reduction_result,
        )

        hypergraph, _ = colorable_almost_uniform_hypergraph(n=30, m=20, k=3, seed=1)
        result = solve_conflict_free_multicoloring(
            hypergraph, k=3, approximator=get_approximator("greedy-min-degree"), lam=4.0
        )
        report = verify_reduction_result(hypergraph, result)
        assert report.conflict_free

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.coloring
        import repro.core
        import repro.decomposition
        import repro.graphs
        import repro.hypergraph
        import repro.local_model
        import repro.maxis
        import repro.reductions
        import repro.slocal

        assert repro.core.__name__ == "repro.core"
